#include "ecc/bch.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <set>

#include "common/cpu_features.hh"

namespace tdc
{

namespace
{

/**
 * Build the generator polynomial of the t-error-correcting primitive
 * BCH code over @p field: the LCM of the minimal polynomials of
 * alpha^1 .. alpha^2t. Returned over GF(2), bit i = coeff of x^i.
 */
std::vector<bool>
buildGenerator(const GF2m &field, size_t t)
{
    // Collect the distinct cyclotomic cosets {i, 2i, 4i, ...} of the
    // exponents 1..2t mod (2^m - 1).
    std::set<uint32_t> covered;
    GFPoly gen({1});
    for (uint32_t i = 1; i <= 2 * t; ++i) {
        const uint32_t rep = i % field.order();
        if (covered.count(rep))
            continue;
        // Minimal polynomial of alpha^rep: product of (x + alpha^j)
        // over the coset of rep.
        GFPoly minimal({1});
        uint32_t j = rep;
        do {
            covered.insert(j);
            minimal = GFPoly::mul(field,
                                  minimal,
                                  GFPoly({field.alphaPow(j), 1}));
            j = uint32_t((uint64_t(j) * 2) % field.order());
        } while (j != rep);
        gen = GFPoly::mul(field, gen, minimal);
    }

    std::vector<bool> out(gen.degree() + 1);
    for (size_t i = 0; i <= gen.degree(); ++i) {
        const uint32_t c = gen.coeff(i);
        assert((c == 0 || c == 1) && "generator must be binary");
        out[i] = c == 1;
    }
    assert(out.back());
    return out;
}

} // namespace

BchCode::BchCode(size_t data_bits, size_t t)
    : k(data_bits), tCap(t)
{
    assert(k > 0 && t > 0);
    // Pick the smallest field degree whose primitive length fits the
    // shortened code.
    for (unsigned m = 4; m <= 12; ++m) {
        auto candidate = std::make_shared<GF2m>(m);
        if (2 * t >= candidate->order())
            continue;
        std::vector<bool> g = buildGenerator(*candidate, t);
        const size_t deg = g.size() - 1;
        if (k + deg <= candidate->order()) {
            field = std::move(candidate);
            gen = std::move(g);
            r = deg;
            break;
        }
    }
    assert(field && "no supported field fits this (k, t)");

    // Build the byte-at-a-time division table (classic CRC technique):
    // one entry per top-byte value, giving the combined reduction of
    // eight bit-serial LFSR steps. Engaged when the remainder fits a
    // word and the data is byte-aligned — true for every (k, t) the
    // paper uses — and makes encode ~8x fewer, branch-free steps.
    if (r >= 8 && r <= 64 && k % 8 == 0) {
        for (size_t i = 0; i < r; ++i) {
            if (gen[i])
                genLow |= uint64_t(1) << i;
        }
        const uint64_t rmask =
            r == 64 ? ~uint64_t(0) : (uint64_t(1) << r) - 1;
        byteTable.resize(256);
        for (uint32_t b = 0; b < 256; ++b) {
            uint64_t cur = uint64_t(b) << (r - 8);
            for (int s = 0; s < 8; ++s) {
                const bool feedback = (cur >> (r - 1)) & 1;
                cur = (cur << 1) & rmask;
                if (feedback)
                    cur ^= genLow;
            }
            byteTable[b] = cur;
        }
    }

    // Per-byte syndrome contribution tables. For byte index bi of the
    // received word, entry (bi, v) is the XOR of the per-bit
    // contributions alpha^(j*p) of every set bit of v to each odd
    // syndrome S_j (j = 1, 3, .., 2t-1); p is the polynomial position
    // of the bit under the [data | check] layout. Built by the
    // classic subset-DP: tab[v] = tab[v & (v-1)] ^ perBit[ctz(v)].
    if (tCap <= kMaxT) {
        const size_t n = k + r;
        const size_t num_bytes = (n + 7) / 8;
        syndTable.assign(num_bytes * 256 * tCap, 0);
        std::vector<uint32_t> per_bit(8 * tCap);
        for (size_t bi = 0; bi < num_bytes; ++bi) {
            for (size_t u = 0; u < 8; ++u) {
                const size_t b = bi * 8 + u;
                for (size_t j = 0; j < tCap; ++j) {
                    // Bits past n never occur in a valid codeword;
                    // zero keeps their (unreachable) entries harmless.
                    per_bit[u * tCap + j] =
                        b >= n ? 0
                               : field->alphaPow(int64_t(2 * j + 1) *
                                                 int64_t(b < k ? r + b
                                                               : b - k));
                }
            }
            uint32_t *base = &syndTable[(bi << 8) * tCap];
            for (uint32_t v = 1; v < 256; ++v) {
                const uint32_t rest = v & (v - 1);
                const size_t u = size_t(std::countr_zero(v));
                const uint32_t *lo = &base[rest * tCap];
                const uint32_t *bit = &per_bit[u * tCap];
                uint32_t *dst = &base[v * tCap];
                for (size_t j = 0; j < tCap; ++j)
                    dst[j] = lo[j] ^ bit[j];
            }
        }
    }

    // Cache the fan-in of each systematic check equation: the column
    // of data bit j is x^(r+j) mod g(x); row i's weight counts the
    // data bits whose column has coefficient i set.
    rowWeights.assign(r, 0);
    for (size_t j = 0; j < k; ++j) {
        BitVector unit(k);
        unit.set(j, true);
        const BitVector col = polyRemainder(unit);
        for (size_t i = 0; i < r; ++i)
            if (col.get(i))
                ++rowWeights[i];
    }
}

BitVector
BchCode::polyRemainder(const BitVector &data) const
{
    assert(data.size() == k);
    if (!byteTable.empty()) {
        // Byte-parallel LFSR division, message byte k/8-1 first (the
        // byte holding the highest polynomial coefficients).
        const uint64_t rmask =
            r == 64 ? ~uint64_t(0) : (uint64_t(1) << r) - 1;
        uint64_t rem = 0;
        for (size_t bi = k / 8; bi-- > 0;) {
            const uint64_t byte = data.toUint64(bi * 8, 8);
            const size_t top = size_t((rem >> (r - 8)) ^ byte) & 0xFF;
            rem = ((rem << 8) & rmask) ^ byteTable[top];
        }
        return BitVector(r, rem);
    }

    // Bit-serial LFSR division of x^r * d(x) by g(x), data
    // coefficient k-1 first.
    BitVector rem(r);
    for (size_t j = k; j-- > 0;) {
        const bool feedback = rem.get(r - 1) ^ data.get(j);
        for (size_t i = r - 1; i > 0; --i)
            rem.set(i, rem.get(i - 1) ^ (feedback && gen[i]));
        rem.set(0, feedback && gen[0]);
    }
    return rem;
}

BitVector
BchCode::computeCheck(const BitVector &data) const
{
    return polyRemainder(data);
}

bool
BchCode::syndromesFast(const BitVector &codeword, uint32_t *synd) const
{
    // Odd syndromes: one table row XOR per nonzero received byte.
    uint32_t odd[kMaxT] = {};
    const uint64_t *words = codeword.wordData();
    const size_t num_bytes = (k + r + 7) / 8;
    for (size_t bi = 0; bi < num_bytes; ++bi) {
        const uint32_t v =
            uint32_t(words[bi / 8] >> ((bi % 8) * 8)) & 0xFF;
        if (v == 0)
            continue;
        const uint32_t *row = &syndTable[((bi << 8) | v) * tCap];
        for (size_t j = 0; j < tCap; ++j)
            odd[j] ^= row[j];
    }

    // Binary received polynomial => S_2j = S_j^2 (Frobenius), so the
    // even half costs t squarings instead of t more table passes.
    uint32_t any = 0;
    for (size_t j = 1; j <= 2 * tCap; ++j) {
        const uint32_t s =
            j % 2 == 1 ? odd[(j - 1) / 2] : field->sqr(synd[j / 2 - 1]);
        synd[j - 1] = s;
        any |= s;
    }
    return any == 0;
}

size_t
BchCode::berlekampMasseyFast(const uint32_t *synd, uint32_t *loc) const
{
    // Inversion-free Berlekamp-Massey: the classic update
    //   C'(x) = C(x) - (d/b) x^gap B(x)
    // is replaced by C'(x) = b*C(x) - d*x^gap*B(x), trading the
    // division (log/exp round trips through GF2m::div on every
    // discrepancy) for one extra mulColumn. The locator comes out
    // scaled by a nonzero constant, which moves no root. All buffers
    // live on the stack and every loop runs over the tracked active
    // length, not the worst-case kBmLen.
    uint32_t prev[kBmLen] = {1};  // B(x)
    uint32_t next[kBmLen];        // C'(x) scratch
    for (size_t i = 0; i < kBmLen; ++i)
        loc[i] = 0;
    loc[0] = 1; // C(x)
    size_t len_c = 1;  // active coefficients of C (tail is zero)
    size_t len_b = 1;  // active coefficients of B
    size_t lfsr_len = 0;
    size_t gap = 1;
    uint32_t prev_disc = 1;

    for (size_t step = 0; step < 2 * tCap; ++step) {
        // The scaled locator no longer has C[0] == 1, so the i = 0
        // term of the discrepancy is a real multiplication too.
        uint32_t disc = field->mul(loc[0], synd[step]);
        for (size_t i = 1; i <= lfsr_len; ++i) {
            if (loc[i] != 0 && synd[step - i] != 0)
                disc ^= field->mul(loc[i], synd[step - i]);
        }
        if (disc == 0) {
            ++gap;
            continue;
        }

        const size_t len_t =
            std::min(kBmLen, std::max(len_c, len_b + gap));
        field->mulColumn(prev_disc, loc, next, len_t);
        const uint32_t ld = field->log(disc);
        for (size_t i = 0; i + gap < len_t; ++i) {
            if (prev[i] != 0)
                next[i + gap] ^=
                    field->expDirect(ld + field->log(prev[i]));
        }

        if (2 * lfsr_len <= step) {
            for (size_t i = 0; i < len_c; ++i)
                prev[i] = loc[i];
            len_b = len_c;
            prev_disc = disc;
            lfsr_len = step + 1 - lfsr_len;
            gap = 1;
        } else {
            ++gap;
        }
        for (size_t i = 0; i < len_t; ++i)
            loc[i] = next[i];
        len_c = std::max(len_c, len_t);
    }

    size_t deg = 0;
    for (size_t i = 0; i < len_c; ++i) {
        if (loc[i] != 0)
            deg = i;
    }
    return deg;
}

namespace
{

/**
 * All solutions of the affine equation y^4 + P y^2 + Q y = R over
 * GF(2^m), m <= 12. The left side L(y) is GF(2)-linear in y
 * (squaring and constant multiplication both are), so the solution
 * set is a coset: one particular solution plus the kernel of the
 * m x m bit matrix of L — found by one Gaussian elimination over the
 * basis images L(e_i), reducing R against the same pivots.
 *
 * Returns 4 with the solutions in @p out when the kernel has
 * dimension exactly 2 and R lies in the image, 0 otherwise. The
 * locator paths only ever need full splitting (deg distinct roots),
 * so partial solution sets are not reported. With R == 0 the
 * particular solution is 0 and @p out is the kernel itself — the
 * cubic path uses its three nonzero elements.
 */
size_t
affineQuarticSolutions(const GF2m &gf, uint32_t P, uint32_t Q, uint32_t R,
                       uint32_t out[4])
{
    const unsigned m = gf.degree();
    uint32_t piv_col[12];  // reduced columns with a pivot
    uint32_t piv_comb[12]; // input combination producing each
    int pivot_of_bit[12];
    for (unsigned i = 0; i < m; ++i)
        pivot_of_bit[i] = -1;
    size_t num_piv = 0;
    uint32_t kernel[2];
    size_t kdim = 0;
    for (unsigned i = 0; i < m; ++i) {
        const uint32_t e = uint32_t(1) << i;
        uint32_t v = gf.sqr(gf.sqr(e)) ^ gf.mul(P, gf.sqr(e)) ^
                     gf.mul(Q, e);
        uint32_t comb = e;
        while (v != 0) {
            const int hb = int(std::bit_width(v)) - 1;
            const int j = pivot_of_bit[hb];
            if (j < 0)
                break;
            v ^= piv_col[j];
            comb ^= piv_comb[j];
        }
        if (v != 0) {
            piv_col[num_piv] = v;
            piv_comb[num_piv] = comb;
            pivot_of_bit[std::bit_width(v) - 1] = int(num_piv);
            ++num_piv;
        } else {
            if (kdim < 2)
                kernel[kdim] = comb;
            ++kdim;
        }
    }
    if (kdim != 2)
        return 0;

    // Particular solution: reduce R against the pivots. Every step
    // cancels the current leading bit, so it terminates; a leading
    // bit with no pivot means R is outside the image — no solution.
    uint32_t part = 0;
    uint32_t rem = R;
    while (rem != 0) {
        const int j = pivot_of_bit[std::bit_width(rem) - 1];
        if (j < 0)
            return 0;
        rem ^= piv_col[j];
        part ^= piv_comb[j];
    }
    out[0] = part;
    out[1] = part ^ kernel[0];
    out[2] = part ^ kernel[1];
    out[3] = part ^ kernel[0] ^ kernel[1];
    return 4;
}

} // namespace

bool
BchCode::locateClosed(const uint32_t *loc, size_t deg,
                      std::vector<size_t> &positions) const
{
    const GF2m &gf = *field;
    const uint32_t order = gf.order();
    const size_t n = k + r;

    // Roots are x = alpha^-p: position p = (order - log x) mod order,
    // valid only when p < n. The locator's constant term is nonzero
    // (invariant of BM and preserved by deflation: 0 is never a
    // root), so x = 0 never occurs.
    const auto push_root = [&](uint32_t x) {
        const uint32_t lx = gf.log(x);
        const uint32_t p = lx == 0 ? 0 : order - lx;
        if (p >= n)
            return false;
        positions.push_back(p);
        return true;
    };

    if (deg == 1) {
        // loc0 + loc1 x = 0  =>  x = loc0/loc1.
        return push_root(gf.div(loc[0], loc[1]));
    }

    if (deg == 2) {
        // x^2 + a x + b with a = loc1/loc2, b = loc0/loc2. a == 0
        // means a repeated root: two distinct error positions cannot
        // exist.
        if (loc[1] == 0)
            return false;
        const uint32_t a = gf.div(loc[1], loc[2]);
        const uint32_t b = gf.div(loc[0], loc[2]);
        // Substitute x = a*y: y^2 + y + b/a^2 = 0.
        const uint32_t y0 = gf.solveQuadratic(gf.div(b, gf.sqr(a)));
        if (y0 == GF2m::kNoRoot)
            return false;
        return push_root(gf.mul(a, y0)) && push_root(gf.mul(a, y0 ^ 1));
    }

    if (deg == 3) {
        // Berlekamp's closed form. Monic: x^3 + a x^2 + b x + c;
        // substituting x = y + a gives the depressed cubic
        // y^3 + P y + Q with P = a^2 + b, Q = a*b + c.
        const uint32_t a = gf.div(loc[2], loc[3]);
        const uint32_t b = gf.div(loc[1], loc[3]);
        const uint32_t c = gf.div(loc[0], loc[3]);
        const uint32_t P = gf.sqr(a) ^ b;
        const uint32_t Q = gf.mul(a, b) ^ c;

        if (Q == 0) {
            // y (y^2 + P) = 0: y = 0 plus a double root sqrt(P) —
            // never three distinct roots.
            return false;
        }

        // Multiplying by y gives L(y) = y^4 + P y^2 + Q y = 0, whose
        // nonzero solutions are exactly the cubic's roots (0 is no
        // cubic root: Q != 0). The cubic splits with distinct roots
        // iff L's kernel has dimension 2; its three nonzero elements
        // are the roots. Uniform over every field — no trace-case
        // analysis.
        uint32_t sols[4];
        if (affineQuarticSolutions(gf, P, Q, 0, sols) != 4)
            return false; // at most one root: cannot split
        for (uint32_t y : sols) {
            if (y != 0 && !push_root(y ^ a)) // x = y + a
                return false;
        }
        return true;
    }

    // deg == 4: closed-form quartic. Monic: x^4 + a x^3 + b x^2 +
    // c x + d (d != 0: zero is never a locator root).
    assert(deg == 4);
    const uint32_t a = gf.div(loc[3], loc[4]);
    const uint32_t b = gf.div(loc[2], loc[4]);
    const uint32_t c = gf.div(loc[1], loc[4]);
    const uint32_t d = gf.div(loc[0], loc[4]);

    uint32_t sols[4];
    if (a == 0) {
        // The cubic term is already gone. c == 0 would leave
        // x^4 + b x^2 + d = (x^2 + sqrt(b) x + sqrt(d))^2 — a perfect
        // square, at most two distinct roots, never four.
        if (c == 0)
            return false;
        if (affineQuarticSolutions(gf, b, c, d, sols) != 4)
            return false;
        for (uint32_t x : sols) {
            if (!push_root(x))
                return false;
        }
        return true;
    }

    // Kill the linear term: the derivative is a x^2 + c (char 2), so
    // shifting by rr = sqrt(c/a), x = y + rr, gives
    // y^4 + a y^3 + b' y^2 + d' with b' = a*rr + b and d' = f(rr).
    const uint32_t rr = gf.sqrt(gf.div(c, a));
    const uint32_t rr2 = gf.sqr(rr);
    const uint32_t bp = gf.mul(a, rr) ^ b;
    const uint32_t fr = gf.sqr(rr2) ^ gf.mul(a, gf.mul(rr2, rr)) ^
                        gf.mul(b, rr2) ^ gf.mul(c, rr) ^ d;
    if (fr == 0) {
        // x = rr itself is a root: deflate by (x + rr) with synthetic
        // division and finish with the cubic closed form. A repeated
        // root reappearing among the cubic's is caught by the
        // caller's duplicate check.
        uint32_t q[4];
        q[3] = 1;
        q[2] = a ^ rr;
        q[1] = b ^ gf.mul(rr, q[2]);
        q[0] = c ^ gf.mul(rr, q[1]);
        return push_root(rr) && locateClosed(q, 3, positions);
    }
    // No root at y = 0, so substitute y = 1/z and multiply by z^4/d':
    // the affine z^4 + (b'/d') z^2 + (a/d') z = 1/d'. Solutions are
    // nonzero automatically (L(0) = 0 != 1/d'), and distinct z give
    // distinct x = 1/z + rr.
    const uint32_t dInv = gf.inv(fr);
    if (affineQuarticSolutions(gf, gf.mul(bp, dInv), gf.mul(a, dInv),
                               dInv, sols) != 4)
        return false;
    for (uint32_t z : sols) {
        if (!push_root(gf.inv(z) ^ rr))
            return false;
    }
    return true;
}

bool
BchCode::locateErrors(const uint32_t *loc, size_t deg_l,
                      std::vector<size_t> &positions) const
{
    positions.clear();
    if (deg_l == 0)
        return true; // no errors located
    if (deg_l > tCap)
        return false;

    const GF2m &gf = *field;
    const uint32_t order = gf.order();
    const size_t n = k + r;

    uint32_t work[kBmLen];
    for (size_t i = 0; i <= deg_l; ++i)
        work[i] = loc[i];
    size_t deg = deg_l;

    // Incremental (log-domain) Chien sweep for degrees the closed
    // forms do not reach: term i of L(alpha^-p) is
    // alpha^(log loc_i - i*p), so stepping p -> p+1 adds the constant
    // (order - i) to each term's exponent — no Horner pass, no
    // modular arithmetic beyond a wrap subtraction. Every root found
    // is deflated out of the locator (synthetic division), shrinking
    // the term count, until the closed forms take over. The quartic
    // closed form belongs to the accelerated dispatch tiers; the
    // scalar tier stops at the cubic, reproducing the reference
    // decoder exactly (same roots either way — only the work to find
    // them differs).
    const size_t closedMax = simdBmi2Active() ? 4 : 3;
    size_t p = 0;
    while (deg > closedMax) {
        uint32_t exps[kBmLen];
        uint32_t steps[kBmLen];
        size_t terms = 0;
        for (size_t i = 0; i <= deg; ++i) {
            if (work[i] == 0)
                continue;
            exps[terms] = uint32_t(
                (gf.log(work[i]) +
                 uint64_t(order - uint32_t(i % order)) * p) %
                order);
            steps[terms] = order - uint32_t(i % order);
            ++terms;
        }

        bool found = false;
        for (; p < n; ++p) {
            uint32_t v = 0;
            for (size_t j = 0; j < terms; ++j)
                v ^= gf.expDirect(exps[j]);
            if (v == 0) {
                positions.push_back(p);
                // Deflate by the root x0 = alpha^-p and restart the
                // sweep state from the next position.
                const uint32_t x0 =
                    gf.expDirect(p == 0 ? 0 : order - uint32_t(p));
                uint32_t carry = work[deg]; // quotient coeff q[deg-1]
                for (size_t i = deg - 1;; --i) {
                    const uint32_t tmp = work[i];
                    work[i] = carry;
                    if (i == 0)
                        break;
                    carry = tmp ^ gf.mul(x0, carry);
                }
                --deg;
                ++p;
                found = true;
                break;
            }
            for (size_t j = 0; j < terms; ++j) {
                exps[j] += steps[j];
                if (exps[j] >= order)
                    exps[j] -= order;
            }
        }
        if (!found) {
            // Fewer roots in [0, n) than the degree demands: the
            // locator does not split over the field (> t errors) or a
            // root sits in the shortened region. Both uncorrectable.
            return false;
        }
    }

    if (!locateClosed(work, deg, positions))
        return false;

    std::sort(positions.begin(), positions.end());
    // Coincident positions mean a repeated root: the locator cannot
    // describe deg_l distinct error locations.
    for (size_t i = 1; i < positions.size(); ++i) {
        if (positions[i] == positions[i - 1])
            return false;
    }
    return true;
}

std::vector<uint32_t>
BchCode::syndromesNaive(const BitVector &codeword) const
{
    // Coefficient position of codeword bit b: check bits occupy
    // coefficients 0..r-1, data bits r..r+k-1. Iterate only the set
    // bits via word scans.
    std::vector<uint32_t> synd(2 * tCap, 0);
    const uint64_t *words = codeword.wordData();
    for (size_t w = 0, n = codeword.wordCount(); w < n; ++w) {
        uint64_t x = words[w];
        while (x != 0) {
            const size_t b = w * 64 + size_t(std::countr_zero(x));
            x &= x - 1;
            const size_t p = b < k ? r + b : b - k;
            for (size_t j = 0; j < 2 * tCap; ++j)
                synd[j] ^= field->alphaPow(int64_t(j + 1) * int64_t(p));
        }
    }
    return synd;
}

GFPoly
BchCode::berlekampMassey(const std::vector<uint32_t> &synd) const
{
    // Standard Berlekamp-Massey over GF(2^m).
    GFPoly locator({1}); // C(x)
    GFPoly prev({1});    // B(x)
    size_t lfsrLen = 0;  // L
    size_t gap = 1;      // x^gap multiplier for B
    uint32_t prevDisc = 1;

    for (size_t n = 0; n < synd.size(); ++n) {
        uint32_t disc = synd[n];
        for (size_t i = 1; i <= lfsrLen; ++i)
            disc ^= field->mul(locator.coeff(i), synd[n - i]);

        if (disc == 0) {
            ++gap;
            continue;
        }

        // C' = C - (disc/prevDisc) * x^gap * B  (minus == plus here).
        GFPoly shifted;
        const uint32_t scale = field->div(disc, prevDisc);
        for (size_t i = 0; i <= prev.degree(); ++i) {
            if (prev.coeff(i) != 0) {
                shifted.setCoeff(i + gap,
                                 field->mul(scale, prev.coeff(i)));
            }
        }
        GFPoly updated = GFPoly::add(locator, shifted);

        if (2 * lfsrLen <= n) {
            prev = locator;
            prevDisc = disc;
            lfsrLen = n + 1 - lfsrLen;
            gap = 1;
        } else {
            ++gap;
        }
        locator = updated;
    }
    return locator;
}

bool
BchCode::chienSearch(const GFPoly &locator,
                     std::vector<size_t> &positions) const
{
    const size_t degL = locator.degree();
    if (degL == 0)
        return true; // no errors located
    if (degL > tCap)
        return false;

    // Roots of the locator are alpha^(-p) for error position p. Only
    // p < n can correspond to a codeword bit, so scanning stops there
    // (not at the full group order 2^m - 1): a root in the shortened
    // region simply never shows up and the count check below flags
    // the word, same verdict as the old full scan at a fraction of
    // the work.
    positions.clear();
    for (uint32_t p = 0; p < k + r; ++p) {
        if (locator.eval(*field, field->alphaPow(-int64_t(p))) == 0)
            positions.push_back(p);
    }
    if (positions.size() != degL)
        return false; // does not split in range: > t errors or
                      // shortened-region root
    return true;
}

DecodeResult
BchCode::decode(const BitVector &codeword) const
{
    assert(codeword.size() == k + r);
    if (syndTable.empty())
        return decodeNaive(codeword); // exotic t > kMaxT

    DecodeResult result;
    result.data = codeword.slice(0, k);

    uint32_t synd[2 * kMaxT];
    if (syndromesFast(codeword, synd)) {
        result.status = DecodeStatus::kClean;
        return result;
    }

    uint32_t locator[kBmLen];
    const size_t deg_l = berlekampMasseyFast(synd, locator);
    std::vector<size_t> positions;
    if (!locateErrors(locator, deg_l, positions) || positions.empty()) {
        result.status = DecodeStatus::kDetectedUncorrectable;
        return result;
    }

    for (size_t p : positions) {
        // Coefficient position -> codeword bit index.
        const size_t bit = p < r ? k + p : p - r;
        if (bit < k)
            result.data.flip(bit);
        result.correctedPositions.push_back(bit);
    }
    result.status = DecodeStatus::kCorrected;
    return result;
}

bool
BchCode::syndromeClean(const BitVector &codeword) const
{
    assert(codeword.size() == k + r);
    if (syndTable.empty())
        return Code::syndromeClean(codeword); // exotic t > kMaxT
    uint32_t synd[2 * kMaxT];
    return syndromesFast(codeword, synd);
}

DecodeResult
BchCode::decodeNaive(const BitVector &codeword) const
{
    assert(codeword.size() == k + r);
    DecodeResult result;
    result.data = codeword.slice(0, k);

    const std::vector<uint32_t> synd = syndromesNaive(codeword);
    bool all_zero = true;
    for (uint32_t s : synd) {
        if (s != 0) {
            all_zero = false;
            break;
        }
    }
    if (all_zero) {
        result.status = DecodeStatus::kClean;
        return result;
    }

    const GFPoly locator = berlekampMassey(synd);
    std::vector<size_t> positions;
    if (!chienSearch(locator, positions) || positions.empty()) {
        result.status = DecodeStatus::kDetectedUncorrectable;
        return result;
    }

    for (size_t p : positions) {
        // Coefficient position -> codeword bit index.
        const size_t bit = p < r ? k + p : p - r;
        if (bit < k)
            result.data.flip(bit);
        result.correctedPositions.push_back(bit);
    }
    result.status = DecodeStatus::kCorrected;
    return result;
}

size_t
BchCode::maxRowWeight() const
{
    size_t best = 0;
    for (size_t w : rowWeights)
        best = std::max(best, w);
    return best + 1; // + the stored check bit folded into the syndrome
}

size_t
BchCode::totalRowWeight() const
{
    size_t total = r; // stored check bits
    for (size_t w : rowWeights)
        total += w;
    return total;
}

std::string
BchCode::name() const
{
    return "(" + std::to_string(k + r) + "," + std::to_string(k) + ") BCH t=" +
           std::to_string(tCap);
}

ExtendedBchCode::ExtendedBchCode(size_t data_bits, size_t t,
                                 std::string display_name)
    : inner(data_bits, t), displayName(std::move(display_name))
{
}

BitVector
ExtendedBchCode::computeCheck(const BitVector &data) const
{
    BitVector check = inner.computeCheck(data);
    // Overall parity bit: make the full codeword even-parity.
    check.pushBack(data.parity() ^ check.parity());
    return check;
}

DecodeResult
ExtendedBchCode::decode(const BitVector &codeword) const
{
    const size_t n_inner = inner.codewordBits();
    assert(codeword.size() == n_inner + 1);

    // Overall parity of the received word equals (#errors mod 2),
    // because every valid codeword has even parity.
    const bool parity_odd = codeword.parity();

    DecodeResult result = inner.decode(codeword.slice(0, n_inner));
    if (result.uncorrectable())
        return result;

    const size_t num_corrected = result.correctedPositions.size();
    const bool parity_consistent = (num_corrected % 2 == 1) == parity_odd;

    if (parity_consistent)
        return result;

    // Parity disagrees with the inner correction count: one more error
    // exists. If the inner decoder was below capacity, it must be the
    // parity bit itself; at full capacity it proves >= t+1 errors.
    if (num_corrected < inner.correctCapability()) {
        result.correctedPositions.push_back(n_inner);
        result.status = DecodeStatus::kCorrected;
        return result;
    }
    result.status = DecodeStatus::kDetectedUncorrectable;
    result.data = codeword.slice(0, inner.dataBits());
    result.correctedPositions.clear();
    return result;
}

bool
ExtendedBchCode::syndromeClean(const BitVector &codeword) const
{
    assert(codeword.size() == inner.codewordBits() + 1);
    // Valid codewords have even overall parity and zero inner
    // syndromes; both checks are necessary.
    return !codeword.parity() &&
           inner.syndromeClean(codeword.slice(0, inner.codewordBits()));
}

std::string
ExtendedBchCode::name() const
{
    return "(" + std::to_string(codewordBits()) + "," +
           std::to_string(dataBits()) + ") " + displayName;
}

} // namespace tdc
