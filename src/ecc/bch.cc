#include "ecc/bch.hh"

#include <bit>
#include <cassert>
#include <map>
#include <set>

namespace tdc
{

namespace
{

/**
 * Build the generator polynomial of the t-error-correcting primitive
 * BCH code over @p field: the LCM of the minimal polynomials of
 * alpha^1 .. alpha^2t. Returned over GF(2), bit i = coeff of x^i.
 */
std::vector<bool>
buildGenerator(const GF2m &field, size_t t)
{
    // Collect the distinct cyclotomic cosets {i, 2i, 4i, ...} of the
    // exponents 1..2t mod (2^m - 1).
    std::set<uint32_t> covered;
    GFPoly gen({1});
    for (uint32_t i = 1; i <= 2 * t; ++i) {
        const uint32_t rep = i % field.order();
        if (covered.count(rep))
            continue;
        // Minimal polynomial of alpha^rep: product of (x + alpha^j)
        // over the coset of rep.
        GFPoly minimal({1});
        uint32_t j = rep;
        do {
            covered.insert(j);
            minimal = GFPoly::mul(field,
                                  minimal,
                                  GFPoly({field.alphaPow(j), 1}));
            j = uint32_t((uint64_t(j) * 2) % field.order());
        } while (j != rep);
        gen = GFPoly::mul(field, gen, minimal);
    }

    std::vector<bool> out(gen.degree() + 1);
    for (size_t i = 0; i <= gen.degree(); ++i) {
        const uint32_t c = gen.coeff(i);
        assert((c == 0 || c == 1) && "generator must be binary");
        out[i] = c == 1;
    }
    assert(out.back());
    return out;
}

} // namespace

BchCode::BchCode(size_t data_bits, size_t t)
    : k(data_bits), tCap(t)
{
    assert(k > 0 && t > 0);
    // Pick the smallest field degree whose primitive length fits the
    // shortened code.
    for (unsigned m = 4; m <= 12; ++m) {
        auto candidate = std::make_shared<GF2m>(m);
        if (2 * t >= candidate->order())
            continue;
        std::vector<bool> g = buildGenerator(*candidate, t);
        const size_t deg = g.size() - 1;
        if (k + deg <= candidate->order()) {
            field = std::move(candidate);
            gen = std::move(g);
            r = deg;
            break;
        }
    }
    assert(field && "no supported field fits this (k, t)");

    // Build the byte-at-a-time division table (classic CRC technique):
    // one entry per top-byte value, giving the combined reduction of
    // eight bit-serial LFSR steps. Engaged when the remainder fits a
    // word and the data is byte-aligned — true for every (k, t) the
    // paper uses — and makes encode ~8x fewer, branch-free steps.
    if (r >= 8 && r <= 64 && k % 8 == 0) {
        for (size_t i = 0; i < r; ++i) {
            if (gen[i])
                genLow |= uint64_t(1) << i;
        }
        const uint64_t rmask =
            r == 64 ? ~uint64_t(0) : (uint64_t(1) << r) - 1;
        byteTable.resize(256);
        for (uint32_t b = 0; b < 256; ++b) {
            uint64_t cur = uint64_t(b) << (r - 8);
            for (int s = 0; s < 8; ++s) {
                const bool feedback = (cur >> (r - 1)) & 1;
                cur = (cur << 1) & rmask;
                if (feedback)
                    cur ^= genLow;
            }
            byteTable[b] = cur;
        }
    }

    // Cache the fan-in of each systematic check equation: the column
    // of data bit j is x^(r+j) mod g(x); row i's weight counts the
    // data bits whose column has coefficient i set.
    rowWeights.assign(r, 0);
    for (size_t j = 0; j < k; ++j) {
        BitVector unit(k);
        unit.set(j, true);
        const BitVector col = polyRemainder(unit);
        for (size_t i = 0; i < r; ++i)
            if (col.get(i))
                ++rowWeights[i];
    }
}

BitVector
BchCode::polyRemainder(const BitVector &data) const
{
    assert(data.size() == k);
    if (!byteTable.empty()) {
        // Byte-parallel LFSR division, message byte k/8-1 first (the
        // byte holding the highest polynomial coefficients).
        const uint64_t rmask =
            r == 64 ? ~uint64_t(0) : (uint64_t(1) << r) - 1;
        uint64_t rem = 0;
        for (size_t bi = k / 8; bi-- > 0;) {
            const uint64_t byte = data.toUint64(bi * 8, 8);
            const size_t top = size_t((rem >> (r - 8)) ^ byte) & 0xFF;
            rem = ((rem << 8) & rmask) ^ byteTable[top];
        }
        return BitVector(r, rem);
    }

    // Bit-serial LFSR division of x^r * d(x) by g(x), data
    // coefficient k-1 first.
    BitVector rem(r);
    for (size_t j = k; j-- > 0;) {
        const bool feedback = rem.get(r - 1) ^ data.get(j);
        for (size_t i = r - 1; i > 0; --i)
            rem.set(i, rem.get(i - 1) ^ (feedback && gen[i]));
        rem.set(0, feedback && gen[0]);
    }
    return rem;
}

BitVector
BchCode::computeCheck(const BitVector &data) const
{
    return polyRemainder(data);
}

const std::vector<uint32_t> &
BchCode::syndromes(const BitVector &codeword) const
{
    // Coefficient position of codeword bit b: check bits occupy
    // coefficients 0..r-1, data bits r..r+k-1. Iterate only the set
    // bits via word scans (codewords are mostly dense, but the scan
    // still replaces a per-bit branch with countr_zero).
    std::vector<uint32_t> &synd = syndScratch;
    synd.assign(2 * tCap, 0);
    const uint64_t *words = codeword.wordData();
    for (size_t w = 0, n = codeword.wordCount(); w < n; ++w) {
        uint64_t x = words[w];
        while (x != 0) {
            const size_t b = w * 64 + size_t(std::countr_zero(x));
            x &= x - 1;
            const size_t p = b < k ? r + b : b - k;
            for (size_t j = 0; j < 2 * tCap; ++j)
                synd[j] ^= field->alphaPow(int64_t(j + 1) * int64_t(p));
        }
    }
    return synd;
}

GFPoly
BchCode::berlekampMassey(const std::vector<uint32_t> &synd) const
{
    // Standard Berlekamp-Massey over GF(2^m).
    GFPoly locator({1}); // C(x)
    GFPoly prev({1});    // B(x)
    size_t lfsrLen = 0;  // L
    size_t gap = 1;      // x^gap multiplier for B
    uint32_t prevDisc = 1;

    for (size_t n = 0; n < synd.size(); ++n) {
        uint32_t disc = synd[n];
        for (size_t i = 1; i <= lfsrLen; ++i)
            disc ^= field->mul(locator.coeff(i), synd[n - i]);

        if (disc == 0) {
            ++gap;
            continue;
        }

        // C' = C - (disc/prevDisc) * x^gap * B  (minus == plus here).
        GFPoly shifted;
        const uint32_t scale = field->div(disc, prevDisc);
        for (size_t i = 0; i <= prev.degree(); ++i) {
            if (prev.coeff(i) != 0) {
                shifted.setCoeff(i + gap,
                                 field->mul(scale, prev.coeff(i)));
            }
        }
        GFPoly updated = GFPoly::add(locator, shifted);

        if (2 * lfsrLen <= n) {
            prev = locator;
            prevDisc = disc;
            lfsrLen = n + 1 - lfsrLen;
            gap = 1;
        } else {
            ++gap;
        }
        locator = updated;
    }
    return locator;
}

bool
BchCode::chienSearch(const GFPoly &locator,
                     std::vector<size_t> &positions) const
{
    const size_t degL = locator.degree();
    if (degL == 0)
        return true; // no errors located
    if (degL > tCap)
        return false;

    // Roots of the locator are alpha^(-p) for error position p. Scan
    // the full primitive length; roots beyond the shortened length
    // mean the error pattern is inconsistent with this code.
    positions.clear();
    for (uint32_t p = 0; p < field->order(); ++p) {
        if (locator.eval(*field, field->alphaPow(-int64_t(p))) == 0)
            positions.push_back(p);
    }
    if (positions.size() != degL)
        return false; // locator does not split: > t errors
    for (size_t p : positions) {
        if (p >= k + r)
            return false; // error "in" the shortened region
    }
    return true;
}

DecodeResult
BchCode::decode(const BitVector &codeword) const
{
    assert(codeword.size() == k + r);
    DecodeResult result;
    result.data = codeword.slice(0, k);

    const std::vector<uint32_t> &synd = syndromes(codeword);
    bool all_zero = true;
    for (uint32_t s : synd) {
        if (s != 0) {
            all_zero = false;
            break;
        }
    }
    if (all_zero) {
        result.status = DecodeStatus::kClean;
        return result;
    }

    const GFPoly locator = berlekampMassey(synd);
    std::vector<size_t> positions;
    if (!chienSearch(locator, positions) || positions.empty()) {
        result.status = DecodeStatus::kDetectedUncorrectable;
        return result;
    }

    for (size_t p : positions) {
        // Coefficient position -> codeword bit index.
        const size_t bit = p < r ? k + p : p - r;
        if (bit < k)
            result.data.flip(bit);
        result.correctedPositions.push_back(bit);
    }
    result.status = DecodeStatus::kCorrected;
    return result;
}

size_t
BchCode::maxRowWeight() const
{
    size_t best = 0;
    for (size_t w : rowWeights)
        best = std::max(best, w);
    return best + 1; // + the stored check bit folded into the syndrome
}

size_t
BchCode::totalRowWeight() const
{
    size_t total = r; // stored check bits
    for (size_t w : rowWeights)
        total += w;
    return total;
}

std::string
BchCode::name() const
{
    return "(" + std::to_string(k + r) + "," + std::to_string(k) + ") BCH t=" +
           std::to_string(tCap);
}

ExtendedBchCode::ExtendedBchCode(size_t data_bits, size_t t,
                                 std::string display_name)
    : inner(data_bits, t), displayName(std::move(display_name))
{
}

BitVector
ExtendedBchCode::computeCheck(const BitVector &data) const
{
    BitVector check = inner.computeCheck(data);
    // Overall parity bit: make the full codeword even-parity.
    check.pushBack(data.parity() ^ check.parity());
    return check;
}

DecodeResult
ExtendedBchCode::decode(const BitVector &codeword) const
{
    const size_t n_inner = inner.codewordBits();
    assert(codeword.size() == n_inner + 1);

    // Overall parity of the received word equals (#errors mod 2),
    // because every valid codeword has even parity.
    const bool parity_odd = codeword.parity();

    DecodeResult result = inner.decode(codeword.slice(0, n_inner));
    if (result.uncorrectable())
        return result;

    const size_t num_corrected = result.correctedPositions.size();
    const bool parity_consistent = (num_corrected % 2 == 1) == parity_odd;

    if (parity_consistent)
        return result;

    // Parity disagrees with the inner correction count: one more error
    // exists. If the inner decoder was below capacity, it must be the
    // parity bit itself; at full capacity it proves >= t+1 errors.
    if (num_corrected < inner.correctCapability()) {
        result.correctedPositions.push_back(n_inner);
        result.status = DecodeStatus::kCorrected;
        return result;
    }
    result.status = DecodeStatus::kDetectedUncorrectable;
    result.data = codeword.slice(0, inner.dataBits());
    result.correctedPositions.clear();
    return result;
}

std::string
ExtendedBchCode::name() const
{
    return "(" + std::to_string(codewordBits()) + "," +
           std::to_string(dataBits()) + ") " + displayName;
}

} // namespace tdc
