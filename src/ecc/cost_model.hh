/**
 * @file
 * First-order VLSI cost model of EDC/ECC coding logic: check-bit
 * storage, XOR-tree coding latency, and coding energy. These are the
 * quantities Figures 1 and 7 of the paper compare across schemes.
 */

#ifndef TDC_ECC_COST_MODEL_HH
#define TDC_ECC_COST_MODEL_HH

#include <cstddef>

#include "ecc/code.hh"
#include "ecc/code_factory.hh"

namespace tdc
{

/**
 * Static cost figures of one coding scheme applied to one word
 * geometry. Latency is reported in logic levels (2-input gate depths)
 * following the paper's method: "the depth of syndrome generation and
 * comparison circuit that consists of an XOR tree and an OR tree",
 * with a dedicated XOR tree per check bit. Energy is reported as the
 * number of 2-input gate evaluations per access (proportional to
 * switched capacitance in the coding logic).
 */
struct CodingCost
{
    size_t dataBits = 0;
    size_t checkBits = 0;

    /** r/k extra storage fraction. */
    double storageOverhead = 0.0;

    /** Depth (logic levels) of the widest check-bit XOR tree. */
    size_t encodeLevels = 0;

    /**
     * Depth of syndrome generation + zero-compare (XOR tree + OR
     * tree): the read-path detection latency.
     */
    size_t detectLevels = 0;

    /**
     * Additional levels for the correction path (syndrome decode +
     * correction mux). Zero for detection-only codes.
     */
    size_t correctLevels = 0;

    /** 2-input XOR gates evaluated per encode. */
    size_t encodeGates = 0;

    /** 2-input gates evaluated per read check (XOR + OR trees). */
    size_t detectGates = 0;
};

/**
 * Compute the cost of @p kind applied to @p data_bits wide words.
 * Gate/level counts are derived from the real H-matrix row weights of
 * the constructed code (not a table), so they track the actual
 * implementations in this library.
 */
CodingCost codingCost(CodeKind kind, size_t data_bits);

/** Number of check bits of @p kind over @p data_bits (convenience). */
size_t checkBitsOf(CodeKind kind, size_t data_bits);

} // namespace tdc

#endif // TDC_ECC_COST_MODEL_HH
