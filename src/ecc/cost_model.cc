#include "ecc/cost_model.hh"

#include <cassert>
#include <cmath>

#include "ecc/bch.hh"
#include "ecc/hsiao.hh"

namespace tdc
{

namespace
{

/** Depth of a balanced tree of 2-input gates over @p fan_in inputs. */
size_t
treeDepth(size_t fan_in)
{
    if (fan_in <= 1)
        return 0;
    return size_t(std::ceil(std::log2(double(fan_in))));
}

} // namespace

size_t
checkBitsOf(CodeKind kind, size_t data_bits)
{
    return makeCode(kind, data_bits)->checkBits();
}

CodingCost
codingCost(CodeKind kind, size_t data_bits)
{
    const CodePtr code = makeCode(kind, data_bits);
    CodingCost cost;
    cost.dataBits = data_bits;
    cost.checkBits = code->checkBits();
    cost.storageOverhead = code->storageOverhead();

    // Per-check-bit XOR fan-in and total gate count depend on the
    // concrete H matrix.
    size_t max_fan_in = 0;
    size_t total_ones = 0;

    switch (kind) {
      case CodeKind::kParity:
        max_fan_in = data_bits;
        total_ones = data_bits;
        break;
      case CodeKind::kEdc8:
      case CodeKind::kEdc16:
      case CodeKind::kEdc32: {
        // Each parity class XORs ceil(k/n) data bits.
        const size_t n = cost.checkBits;
        max_fan_in = (data_bits + n - 1) / n;
        total_ones = data_bits;
        break;
      }
      case CodeKind::kSecDed: {
        const auto &h = dynamic_cast<const HsiaoSecDedCode &>(*code);
        max_fan_in = h.maxRowWeight();
        total_ones = h.totalRowWeight();
        break;
      }
      case CodeKind::kDecTed:
      case CodeKind::kQecPed:
      case CodeKind::kOecNed: {
        const auto &ext = dynamic_cast<const ExtendedBchCode &>(*code);
        max_fan_in =
            std::max(ext.innerCode().maxRowWeight(), data_bits);
        total_ones = ext.innerCode().totalRowWeight() + data_bits;
        break;
      }
    }

    // Encode: one XOR tree per check bit, all in parallel.
    cost.encodeLevels = treeDepth(max_fan_in);
    cost.encodeGates = total_ones >= cost.checkBits
                           ? total_ones - cost.checkBits
                           : 0;

    // Detect: recompute the check bits (same trees, stored bits folded
    // in: +1 input) then OR-reduce the syndrome to a flag.
    cost.detectLevels = treeDepth(max_fan_in + 1) +
                        treeDepth(cost.checkBits);
    cost.detectGates = cost.encodeGates + cost.checkBits // fold stored
                       + (cost.checkBits - 1);           // OR tree

    // Correct: syndrome decode (match against n column patterns, an
    // AND plane of depth log2(r)) plus the correcting XOR stage. BCH
    // correction is iterative (Berlekamp-Massey + Chien) and the paper
    // treats it as an out-of-band, multi-cycle path; the single-cycle
    // estimate below is the standard parallel syndrome-decode bound.
    switch (kind) {
      case CodeKind::kParity:
      case CodeKind::kEdc8:
      case CodeKind::kEdc16:
      case CodeKind::kEdc32:
        cost.correctLevels = 0;
        break;
      case CodeKind::kSecDed:
        cost.correctLevels = treeDepth(cost.checkBits) + 1;
        break;
      case CodeKind::kDecTed:
      case CodeKind::kQecPed:
      case CodeKind::kOecNed: {
        // t sequential locator steps approximated as t syndrome-decode
        // stages (lower bound for a fully unrolled corrector).
        const size_t t = code->correctCapability();
        cost.correctLevels = t * (treeDepth(cost.checkBits) + 1);
        break;
      }
    }

    return cost;
}

} // namespace tdc
