/**
 * @file
 * Factory for the named coding schemes used throughout the paper.
 */

#ifndef TDC_ECC_CODE_FACTORY_HH
#define TDC_ECC_CODE_FACTORY_HH

#include <string>

#include "ecc/code.hh"

namespace tdc
{

/**
 * The coding schemes named in the paper (Figure 1 legend):
 *  - kEdc8 / kEdc16 / kEdc32 : n-way interleaved parity, detection only
 *  - kParity                 : single even parity (byte-parity stand-in)
 *  - kSecDed                 : Hsiao single-correct double-detect
 *  - kDecTed                 : extended BCH t=2 (2-correct 3-detect)
 *  - kQecPed                 : extended BCH t=4 (4-correct 5-detect)
 *  - kOecNed                 : extended BCH t=8 (8-correct 9-detect)
 */
enum class CodeKind
{
    kParity,
    kEdc8,
    kEdc16,
    kEdc32,
    kSecDed,
    kDecTed,
    kQecPed,
    kOecNed,
};

/** Short display label ("EDC8", "SECDED", ...). */
std::string codeKindName(CodeKind kind);

/** All kinds, in declaration order (the registry/spec-parser axis). */
inline constexpr CodeKind kAllCodeKinds[] = {
    CodeKind::kParity, CodeKind::kEdc8,   CodeKind::kEdc16,
    CodeKind::kEdc32,  CodeKind::kSecDed, CodeKind::kDecTed,
    CodeKind::kQecPed, CodeKind::kOecNed,
};

/**
 * Inverse of codeKindName, case-insensitive ("secded", "EDC8"...).
 * Throws std::invalid_argument quoting @p name if it matches no kind,
 * so spec-string parsers never default-construct a wrong code.
 */
CodeKind parseCodeKind(const std::string &name);

/** Build the code @p kind over a @p data_bits wide word. */
CodePtr makeCode(CodeKind kind, size_t data_bits);

/** All kinds in the order Figure 1 plots them. */
inline constexpr CodeKind kFigure1Kinds[] = {
    CodeKind::kEdc8, CodeKind::kSecDed, CodeKind::kDecTed,
    CodeKind::kQecPed, CodeKind::kOecNed,
};

} // namespace tdc

#endif // TDC_ECC_CODE_FACTORY_HH
