/**
 * @file
 * Shortened binary BCH codes: the multi-bit ECC family the paper's
 * conventional baselines are built from (DECTED, QECPED, OECNED).
 */

#ifndef TDC_ECC_BCH_HH
#define TDC_ECC_BCH_HH

#include <memory>
#include <vector>

#include "ecc/code.hh"
#include "ecc/gf2m.hh"

namespace tdc
{

/**
 * Systematic shortened binary BCH code correcting t errors in k data
 * bits.
 *
 * Construction: the smallest GF(2^m) is chosen such that the shortened
 * code fits the primitive length (k + deg(g) <= 2^m - 1). The
 * generator g(x) is the LCM of the minimal polynomials of
 * alpha^1..alpha^2t. Encoding appends the remainder of d(x)*x^r mod
 * g(x); decoding computes syndromes S_1..S_2t, runs Berlekamp-Massey
 * to obtain the error-locator polynomial, and locates errors by Chien
 * search. If the locator degree disagrees with the root count, or a
 * root falls in the shortened (always-zero) region, the word is
 * flagged uncorrectable.
 *
 * Codeword layout follows the Code interface: [data | check]. Data
 * bit j corresponds to polynomial coefficient r + j; check bit i to
 * coefficient i.
 *
 * With t = 2/4/8 over 64-bit data this reproduces exactly the
 * geometries the paper quotes once the extended parity bit is added
 * (see ExtendedBchCode): (79->80,64) DECTED, (92->93,64) QECPED,
 * (120->121,64) OECNED.
 */
class BchCode : public Code
{
  public:
    /**
     * @param data_bits data word width k
     * @param t target correction capability in bits
     */
    BchCode(size_t data_bits, size_t t);

    size_t dataBits() const override { return k; }
    size_t checkBits() const override { return r; }
    BitVector computeCheck(const BitVector &data) const override;

    /**
     * Table-driven decode engine: odd syndromes from per-byte
     * contribution tables (even ones by Frobenius squaring),
     * inversion-free Berlekamp-Massey on fixed stack buffers, and
     * error location by closed-form solvers for locator degrees 1-3
     * (degree 4 too on the accelerated dispatch tiers, see
     * locateErrors) with a log-domain incremental Chien sweep
     * (bounded to the shortened length n, early exit at deg(locator)
     * roots) above that. Bit-exact against decodeNaive by
     * construction and by the differential test suite.
     */
    DecodeResult decode(const BitVector &codeword) const override;

    /** Allocation-free clean check via the fast syndrome engine (see
     *  Code::syndromeClean). */
    bool syndromeClean(const BitVector &codeword) const override;

    /**
     * The original element-at-a-time decoder (per-bit Horner
     * syndromes, polynomial Berlekamp-Massey, full-scan Chien),
     * retained as the differential-test oracle for decode() — the
     * same role the per-bit interleave fallback plays for the
     * word-parallel access path.
     */
    DecodeResult decodeNaive(const BitVector &codeword) const;

    size_t correctCapability() const override { return tCap; }
    size_t detectCapability() const override { return tCap; }
    std::string name() const override;

    /** Field degree m of the underlying GF(2^m). */
    unsigned fieldDegree() const { return field->degree(); }

    /** Generator polynomial over GF(2), bit i = coefficient of x^i. */
    const std::vector<bool> &generator() const { return gen; }

    /**
     * Weight of the heaviest check-bit equation (row of the systematic
     * H matrix): XOR-tree fan-in for the latency model.
     */
    size_t maxRowWeight() const;

    /** Total ones across all check equations: XOR gate count. */
    size_t totalRowWeight() const;

  private:
    /**
     * Largest t the table engine supports; every geometry in the
     * study is t <= 8. Exotic larger-t constructions silently fall
     * back to the naive path.
     */
    static constexpr size_t kMaxT = 12;

    /**
     * Fixed length of the Berlekamp-Massey stack buffers. Locator
     * degree is bounded by 2t and the x^gap shift by another 2t, so
     * 4t + 2 covers every intermediate polynomial.
     */
    static constexpr size_t kBmLen = 4 * kMaxT + 2;

    /** Divide x^r * d(x) by g(x) over GF(2), returning the remainder. */
    BitVector polyRemainder(const BitVector &data) const;

    /**
     * Table engine: S_1..S_2t into @p synd (length 2t). Returns true
     * iff all syndromes are zero.
     */
    bool syndromesFast(const BitVector &codeword, uint32_t *synd) const;

    /**
     * Inversion-free Berlekamp-Massey: writes a (scaled) locator into
     * @p loc (length kBmLen) and returns its degree. The scaling by
     * nonzero discrepancies leaves the root set — and therefore the
     * decode outcome — identical to the classic normalization.
     */
    size_t berlekampMasseyFast(const uint32_t *synd, uint32_t *loc) const;

    /**
     * Error positions (polynomial coefficient indices, ascending) of
     * the locator's roots. Low degrees go straight to closed-form
     * solvers — 1-3 on the scalar tier, 1-4 on the accelerated
     * dispatch tiers (common/cpu_features.hh); higher degrees run
     * the log-domain incremental Chien sweep over p in [0, n),
     * deflating the locator at every root until the closed forms
     * take over. The root set (hence the decode outcome) is backend
     * independent; only the search work differs. False on degree/
     * root-count mismatch or any root outside the shortened length.
     */
    bool locateErrors(const uint32_t *loc, size_t deg_l,
                      std::vector<size_t> &positions) const;

    /**
     * Closed-form root solver for locator degree 1 (direct log), 2
     * (quadratic y^2+y=c table), 3 (kernel of the linearized
     * y^4+Py^2+Qy) and 4 (shift by sqrt(c/a) to kill the linear
     * term, then the reciprocal substitution reduces to the same
     * affine quartic with a nonzero right-hand side). Appends
     * coefficient positions unsorted; false if the locator cannot
     * have deg distinct in-range roots.
     */
    bool locateClosed(const uint32_t *loc, size_t deg,
                      std::vector<size_t> &positions) const;

    /** Naive-path syndromes S_1..S_2t (per-bit Horner; the oracle). */
    std::vector<uint32_t> syndromesNaive(const BitVector &codeword) const;

    /** Naive-path Berlekamp-Massey (polynomial arithmetic). */
    GFPoly berlekampMassey(const std::vector<uint32_t> &synd) const;

    /**
     * Naive-path Chien search. Scans p in [0, n): a root at a
     * shortened position p >= n simply never shows up, which the
     * root-count check then flags — equivalent to (and cheaper than)
     * scanning the full multiplicative group.
     */
    bool chienSearch(const GFPoly &locator,
                     std::vector<size_t> &positions) const;

    size_t k;
    size_t tCap;
    size_t r;
    std::shared_ptr<const GF2m> field;
    std::vector<bool> gen;
    /** Cached H-matrix row weights of the systematic check equations. */
    std::vector<size_t> rowWeights;

    /**
     * CRC-style byte-at-a-time division table: remainder evolution of
     * injecting one message byte into the LFSR. Built when the
     * remainder fits one word (r <= 64) and k is byte-aligned, which
     * covers every geometry in the study; empty otherwise (bit-serial
     * fallback).
     */
    std::vector<uint64_t> byteTable;
    /** Low r bits of g(x) as a word (valid iff byteTable nonempty). */
    uint64_t genLow = 0;

    /**
     * Per-byte odd-syndrome contribution tables (the Hsiao shape
     * lifted to GF(2^m)): entry [(byte_index << 8 | byte_value) * t
     * + j] is the contribution of that received byte to S_{2j+1}.
     * Even syndromes follow by squaring (S_2j = S_j^2 for binary
     * codes), so a full syndrome set costs ceil(n/8) table rows of t
     * XORs plus t squarings instead of one Horner pass per set bit.
     * Empty when t > kMaxT (naive fallback).
     */
    std::vector<uint32_t> syndTable;
};

/**
 * A BCH code extended with one overall parity bit, raising detection
 * to t+1 errors (minimum distance 2t+2). This matches the paper's
 * naming: DECTED = extended t=2, QECPED = extended t=4, OECNED =
 * extended t=8.
 *
 * Layout: [data | inner BCH check | overall parity].
 */
class ExtendedBchCode : public Code
{
  public:
    ExtendedBchCode(size_t data_bits, size_t t, std::string display_name);

    size_t dataBits() const override { return inner.dataBits(); }
    size_t checkBits() const override { return inner.checkBits() + 1; }
    BitVector computeCheck(const BitVector &data) const override;
    DecodeResult decode(const BitVector &codeword) const override;
    /** Clean iff the overall parity is even and the inner BCH
     *  syndromes vanish (see Code::syndromeClean). */
    bool syndromeClean(const BitVector &codeword) const override;
    size_t correctCapability() const override
    {
        return inner.correctCapability();
    }
    size_t detectCapability() const override
    {
        return inner.correctCapability() + 1;
    }
    std::string name() const override;

    const BchCode &innerCode() const { return inner; }

  private:
    BchCode inner;
    std::string displayName;
};

} // namespace tdc

#endif // TDC_ECC_BCH_HH
