/**
 * @file
 * Shortened binary BCH codes: the multi-bit ECC family the paper's
 * conventional baselines are built from (DECTED, QECPED, OECNED).
 */

#ifndef TDC_ECC_BCH_HH
#define TDC_ECC_BCH_HH

#include <memory>
#include <vector>

#include "ecc/code.hh"
#include "ecc/gf2m.hh"

namespace tdc
{

/**
 * Systematic shortened binary BCH code correcting t errors in k data
 * bits.
 *
 * Construction: the smallest GF(2^m) is chosen such that the shortened
 * code fits the primitive length (k + deg(g) <= 2^m - 1). The
 * generator g(x) is the LCM of the minimal polynomials of
 * alpha^1..alpha^2t. Encoding appends the remainder of d(x)*x^r mod
 * g(x); decoding computes syndromes S_1..S_2t, runs Berlekamp-Massey
 * to obtain the error-locator polynomial, and locates errors by Chien
 * search. If the locator degree disagrees with the root count, or a
 * root falls in the shortened (always-zero) region, the word is
 * flagged uncorrectable.
 *
 * Codeword layout follows the Code interface: [data | check]. Data
 * bit j corresponds to polynomial coefficient r + j; check bit i to
 * coefficient i.
 *
 * With t = 2/4/8 over 64-bit data this reproduces exactly the
 * geometries the paper quotes once the extended parity bit is added
 * (see ExtendedBchCode): (79->80,64) DECTED, (92->93,64) QECPED,
 * (120->121,64) OECNED.
 */
class BchCode : public Code
{
  public:
    /**
     * @param data_bits data word width k
     * @param t target correction capability in bits
     */
    BchCode(size_t data_bits, size_t t);

    size_t dataBits() const override { return k; }
    size_t checkBits() const override { return r; }
    BitVector computeCheck(const BitVector &data) const override;
    DecodeResult decode(const BitVector &codeword) const override;
    size_t correctCapability() const override { return tCap; }
    size_t detectCapability() const override { return tCap; }
    std::string name() const override;

    /** Field degree m of the underlying GF(2^m). */
    unsigned fieldDegree() const { return field->degree(); }

    /** Generator polynomial over GF(2), bit i = coefficient of x^i. */
    const std::vector<bool> &generator() const { return gen; }

    /**
     * Weight of the heaviest check-bit equation (row of the systematic
     * H matrix): XOR-tree fan-in for the latency model.
     */
    size_t maxRowWeight() const;

    /** Total ones across all check equations: XOR gate count. */
    size_t totalRowWeight() const;

  private:
    /** Divide x^r * d(x) by g(x) over GF(2), returning the remainder. */
    BitVector polyRemainder(const BitVector &data) const;

    /**
     * Syndromes S_1..S_2t of the received polynomial, written into the
     * cached scratch buffer (one heap allocation per codec lifetime
     * instead of one per decode; decode is therefore not thread-safe
     * per instance, like the rest of the per-word scratch).
     */
    const std::vector<uint32_t> &syndromes(const BitVector &codeword) const;

    /** Berlekamp-Massey: error-locator polynomial from syndromes. */
    GFPoly berlekampMassey(const std::vector<uint32_t> &synd) const;

    /**
     * Chien search: error positions (polynomial coefficient indices)
     * of the locator's roots. Returns false on degree/root mismatch
     * or out-of-range position.
     */
    bool chienSearch(const GFPoly &locator,
                     std::vector<size_t> &positions) const;

    size_t k;
    size_t tCap;
    size_t r;
    std::shared_ptr<const GF2m> field;
    std::vector<bool> gen;
    /** Cached H-matrix row weights of the systematic check equations. */
    std::vector<size_t> rowWeights;

    /**
     * CRC-style byte-at-a-time division table: remainder evolution of
     * injecting one message byte into the LFSR. Built when the
     * remainder fits one word (r <= 64) and k is byte-aligned, which
     * covers every geometry in the study; empty otherwise (bit-serial
     * fallback).
     */
    std::vector<uint64_t> byteTable;
    /** Low r bits of g(x) as a word (valid iff byteTable nonempty). */
    uint64_t genLow = 0;

    /** Per-decode scratch, cached across calls (see syndromes()). */
    mutable std::vector<uint32_t> syndScratch;
};

/**
 * A BCH code extended with one overall parity bit, raising detection
 * to t+1 errors (minimum distance 2t+2). This matches the paper's
 * naming: DECTED = extended t=2, QECPED = extended t=4, OECNED =
 * extended t=8.
 *
 * Layout: [data | inner BCH check | overall parity].
 */
class ExtendedBchCode : public Code
{
  public:
    ExtendedBchCode(size_t data_bits, size_t t, std::string display_name);

    size_t dataBits() const override { return inner.dataBits(); }
    size_t checkBits() const override { return inner.checkBits() + 1; }
    BitVector computeCheck(const BitVector &data) const override;
    DecodeResult decode(const BitVector &codeword) const override;
    size_t correctCapability() const override
    {
        return inner.correctCapability();
    }
    size_t detectCapability() const override
    {
        return inner.correctCapability() + 1;
    }
    std::string name() const override;

    const BchCode &innerCode() const { return inner; }

  private:
    BchCode inner;
    std::string displayName;
};

} // namespace tdc

#endif // TDC_ECC_BCH_HH
