/**
 * @file
 * Symbol-organised Reed-Solomon SSC-DSD codec over GF(2^b) — the
 * chipkill-class counterpart of the bit-organised codes in code.hh.
 *
 * The code is a distance-4 RS code with three check symbols (roots
 * alpha^0..alpha^2), shortened to n = k + 3 symbols: it corrects any
 * single symbol error (one whole x4/x8 DRAM chip burst), detects any
 * double symbol error, and in erasure mode corrects one known-dead
 * symbol plus one additional unknown symbol error (1 erasure + 1
 * error <= d - 1 = 3). A symbol-serial trial-patch decoder
 * (decodeNaive) is retained as the differential oracle, mirroring the
 * bit-level decodeNaive pattern of the BCH codecs.
 */

#ifndef TDC_ECC_REED_SOLOMON_HH
#define TDC_ECC_REED_SOLOMON_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ecc/code.hh"
#include "ecc/gf2m.hh"

namespace tdc
{

/** Result of one symbol-codeword decode. */
struct SymbolDecodeResult
{
    DecodeStatus status = DecodeStatus::kClean;

    /**
     * (position, xor-value) pairs the decoder applied to the word
     * (empty unless status == kCorrected). Positions use the codeword
     * layout [check 0..2 | data 3..n-1].
     */
    std::vector<std::pair<size_t, uint32_t>> corrections;

    bool clean() const { return status == DecodeStatus::kClean; }
    bool corrected() const { return status == DecodeStatus::kCorrected; }
    bool uncorrectable() const
    {
        return status == DecodeStatus::kDetectedUncorrectable;
    }
};

/**
 * Shortened distance-4 Reed-Solomon code over GF(2^b):
 * n = dataSymbols + 3 <= 2^b - 1 symbols, check symbols at codeword
 * positions 0..2 and data symbols at positions 3..n-1. Symbols are
 * field elements 0..2^b-1.
 */
class SymbolRsCode
{
  public:
    static constexpr size_t kCheckSymbols = 3;

    /**
     * @param symbol_bits  b, bits per symbol (one chip burst), 3..12.
     * @param data_symbols k, data symbols per codeword;
     *                     k + 3 <= 2^b - 1.
     */
    SymbolRsCode(unsigned symbol_bits, size_t data_symbols);

    unsigned symbolBits() const { return field_.degree(); }
    size_t dataSymbols() const { return data_; }
    size_t codeSymbols() const { return data_ + kCheckSymbols; }

    /** Check/data symbol ratio (the chipkill storage overhead). */
    double storageOverhead() const
    {
        return double(kCheckSymbols) / double(data_);
    }

    const GF2m &field() const { return field_; }

    /**
     * Fill the three check symbols of @p word (positions 0..2) from
     * its data symbols (positions 3..n-1).
     * @pre word.size() == codeSymbols()
     */
    void encode(std::vector<uint32_t> &word) const;

    /** True iff all three syndromes of @p word are zero. */
    bool syndromeClean(const std::vector<uint32_t> &word) const;

    /**
     * SSC-DSD decode: corrects any single symbol error in place,
     * detects (without miscorrection) any double symbol error.
     */
    SymbolDecodeResult decode(std::vector<uint32_t> &word) const;

    /**
     * Erasure decode for one known-dead symbol position @p erasure
     * (e.g. a chip previously declared dead): corrects the erased
     * symbol plus up to one additional unknown symbol error in place.
     * @pre erasure < codeSymbols()
     */
    SymbolDecodeResult decodeErasure(std::vector<uint32_t> &word,
                                     size_t erasure) const;

    /**
     * Symbol-serial differential oracle: trial-patches every
     * (position, value) pair and recomputes the syndromes from
     * scratch, O(n^2 * 2^b) per word. Agrees with decode() on every
     * input by construction of the single-error signature.
     */
    SymbolDecodeResult decodeNaive(std::vector<uint32_t> &word) const;

  private:
    /** S_j = sum_i word[i] * alpha^(i*j) for j = 0..2. */
    void syndromes(const std::vector<uint32_t> &word,
                   uint32_t s[kCheckSymbols]) const;

    GF2m field_;
    size_t data_;
};

} // namespace tdc

#endif // TDC_ECC_REED_SOLOMON_HH
