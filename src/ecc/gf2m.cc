#include "ecc/gf2m.hh"

#include <cassert>

namespace tdc
{

namespace
{

/**
 * Primitive polynomials for GF(2^m), bit i = coefficient of x^i.
 * Standard minimal-weight choices (e.g. m=7: x^7+x^3+1, m=9:
 * x^9+x^4+1).
 */
uint32_t
primitivePolyFor(unsigned m)
{
    switch (m) {
      case 3: return 0b1011;             // x^3+x+1
      case 4: return 0b10011;            // x^4+x+1
      case 5: return 0b100101;           // x^5+x^2+1
      case 6: return 0b1000011;          // x^6+x+1
      case 7: return 0b10001001;         // x^7+x^3+1
      case 8: return 0b100011101;        // x^8+x^4+x^3+x^2+1
      case 9: return 0b1000010001;       // x^9+x^4+1
      case 10: return 0b10000001001;     // x^10+x^3+1
      case 11: return 0b100000000101;    // x^11+x^2+1
      case 12: return 0b1000001010011;   // x^12+x^6+x^4+x+1
      default:
        assert(false && "unsupported field degree");
        return 0;
    }
}

} // namespace

GF2m::GF2m(unsigned m_)
    : m(m_), fieldSize(uint32_t(1) << m_), primPoly(primitivePolyFor(m_))
{
    expTable.resize(2 * order());
    logTable.assign(fieldSize, 0);
    uint32_t value = 1;
    for (uint32_t i = 0; i < order(); ++i) {
        expTable[i] = value;
        logTable[value] = i;
        value <<= 1;
        if (value & fieldSize)
            value ^= primPoly;
    }
    assert(value == 1 && "polynomial is not primitive");
    // Duplicate the table so mul can skip one modular reduction.
    for (uint32_t i = order(); i < 2 * order(); ++i)
        expTable[i] = expTable[i - order()];

    // Quadratic-solution table: y^2 + y covers exactly the trace-zero
    // half of the field; iterating y ascending records the smaller
    // root of each reachable c.
    qrtTable.assign(fieldSize, kNoRoot);
    for (uint32_t y = 0; y < fieldSize; ++y) {
        const uint32_t c = sqr(y) ^ y;
        if (qrtTable[c] == kNoRoot)
            qrtTable[c] = y;
    }
}

uint32_t
GF2m::mul(uint32_t a, uint32_t b) const
{
    if (a == 0 || b == 0)
        return 0;
    return expTable[logTable[a] + logTable[b]];
}

uint32_t
GF2m::inv(uint32_t a) const
{
    assert(a != 0);
    return expTable[order() - logTable[a]];
}

uint32_t
GF2m::div(uint32_t a, uint32_t b) const
{
    assert(b != 0);
    if (a == 0)
        return 0;
    return expTable[(logTable[a] + order() - logTable[b]) % order()];
}

uint32_t
GF2m::alphaPow(int64_t e) const
{
    int64_t r = e % int64_t(order());
    if (r < 0)
        r += order();
    return expTable[size_t(r)];
}

uint32_t
GF2m::log(uint32_t a) const
{
    assert(a != 0);
    return logTable[a];
}

void
GF2m::mulColumn(uint32_t a, const uint32_t *in, uint32_t *out,
                size_t n) const
{
    if (a == 0) {
        for (size_t i = 0; i < n; ++i)
            out[i] = 0;
        return;
    }
    const uint32_t la = logTable[a];
    for (size_t i = 0; i < n; ++i)
        out[i] = in[i] == 0 ? 0 : expTable[la + logTable[in[i]]];
}

uint32_t
GF2m::pow(uint32_t a, int64_t e) const
{
    if (a == 0) {
        assert(e > 0);
        return 0;
    }
    const int64_t l = (int64_t(logTable[a]) * e) % int64_t(order());
    return alphaPow(l);
}

GFPoly::GFPoly(std::vector<uint32_t> coeffs)
    : c(std::move(coeffs))
{
    trim();
}

void
GFPoly::trim()
{
    while (c.size() > 1 && c.back() == 0)
        c.pop_back();
}

size_t
GFPoly::degree() const
{
    return c.empty() ? 0 : c.size() - 1;
}

void
GFPoly::setCoeff(size_t i, uint32_t value)
{
    if (i >= c.size())
        c.resize(i + 1, 0);
    c[i] = value;
    trim();
}

bool
GFPoly::isZero() const
{
    for (uint32_t x : c)
        if (x != 0)
            return false;
    return true;
}

uint32_t
GFPoly::eval(const GF2m &field, uint32_t x) const
{
    uint32_t acc = 0;
    for (size_t i = c.size(); i-- > 0;)
        acc = field.add(field.mul(acc, x), c[i]);
    return acc;
}

GFPoly
GFPoly::add(const GFPoly &a, const GFPoly &b)
{
    std::vector<uint32_t> out(std::max(a.c.size(), b.c.size()), 0);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = a.coeff(i) ^ b.coeff(i);
    return GFPoly(std::move(out));
}

GFPoly
GFPoly::mul(const GF2m &field, const GFPoly &a, const GFPoly &b)
{
    if (a.isZero() || b.isZero())
        return GFPoly({0});
    std::vector<uint32_t> out(a.c.size() + b.c.size() - 1, 0);
    for (size_t i = 0; i < a.c.size(); ++i) {
        if (a.c[i] == 0)
            continue;
        for (size_t j = 0; j < b.c.size(); ++j)
            out[i + j] ^= field.mul(a.c[i], b.c[j]);
    }
    return GFPoly(std::move(out));
}

GFPoly
GFPoly::derivative() const
{
    if (c.size() <= 1)
        return GFPoly({0});
    std::vector<uint32_t> out(c.size() - 1, 0);
    // d/dx sum c_i x^i = sum (i mod 2) c_i x^(i-1) in characteristic 2.
    for (size_t i = 1; i < c.size(); i += 2)
        out[i - 1] = c[i];
    return GFPoly(std::move(out));
}

} // namespace tdc
