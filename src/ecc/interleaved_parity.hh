/**
 * @file
 * EDCn: n-way bit-interleaved parity, the paper's horizontal detection
 * code (Section 3).
 */

#ifndef TDC_ECC_INTERLEAVED_PARITY_HH
#define TDC_ECC_INTERLEAVED_PARITY_HH

#include "ecc/code.hh"

namespace tdc
{

/**
 * EDCn stores n check bits per word; check bit i holds the even parity
 * of every n-th data bit starting at i:
 *
 *     check[i] = data[i] ^ data[i+n] ^ data[i+2n] ^ ...
 *
 * A contiguous burst of length <= n flips at most one bit of each
 * parity class, so every class it touches goes odd and the burst is
 * guaranteed detected. EDC8 over 64-bit data has the same check-bit
 * count and calculation latency as byte parity (the code used by
 * timing-critical L1 caches), which is why the paper builds the 2D
 * horizontal dimension out of it.
 *
 * The syndrome (per-class parity mismatch) localizes errors to parity
 * classes, i.e. to column positions modulo n. This is exactly the
 * information the 2D recovery algorithm combines with the vertical
 * code to locate erroneous bits (Section 4).
 */
class InterleavedParityCode : public Code
{
  public:
    /**
     * @param data_bits word width k (must be a multiple of n for the
     *        classic layout; any k >= n works)
     * @param n interleave distance / number of check bits
     */
    InterleavedParityCode(size_t data_bits, size_t n);

    size_t dataBits() const override { return k; }
    size_t checkBits() const override { return numClasses; }
    BitVector computeCheck(const BitVector &data) const override;
    DecodeResult decode(const BitVector &codeword) const override;
    size_t correctCapability() const override { return 0; }
    /** Guaranteed detection of any single flip (arbitrary position). */
    size_t detectCapability() const override { return 1; }
    /** Guaranteed detection of any contiguous burst of width <= n. */
    size_t burstDetectCapability() const override { return numClasses; }
    std::string name() const override;

    /**
     * Raw syndrome of a codeword: bit i set iff parity class i
     * mismatches. Used by the 2D recovery controller to map detected
     * errors onto column classes.
     */
    BitVector syndrome(const BitVector &codeword) const;

    /** Allocation-free clean check (see Code::syndromeClean). */
    bool syndromeClean(const BitVector &codeword) const override;

  private:
    /**
     * Word-parallel check computation: XOR-fold the low @p nbits of
     * the packed @p words down to one bit per parity class. Valid only
     * when n divides 64 (all EDCn geometries the paper uses).
     */
    uint64_t foldClasses(const uint64_t *words, size_t nbits) const;

    /** Syndrome as a packed n-bit word (fast path of syndrome()). */
    uint64_t syndromeBits(const BitVector &codeword) const;

    size_t k;
    size_t numClasses;
    /** True iff n divides 64, enabling the word-folded hot path. */
    bool wordParallel;
};

} // namespace tdc

#endif // TDC_ECC_INTERLEAVED_PARITY_HH
