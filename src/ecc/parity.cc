#include "ecc/parity.hh"

#include <cassert>

namespace tdc
{

ParityCode::ParityCode(size_t data_bits)
    : k(data_bits)
{
    assert(k > 0);
}

BitVector
ParityCode::computeCheck(const BitVector &data) const
{
    assert(data.size() == k);
    BitVector check(1);
    check.set(0, data.parity());
    return check;
}

DecodeResult
ParityCode::decode(const BitVector &codeword) const
{
    assert(codeword.size() == k + 1);
    DecodeResult result;
    result.data = codeword.slice(0, k);
    result.status = codeword.parity() ? DecodeStatus::kDetectedUncorrectable
                                      : DecodeStatus::kClean;
    return result;
}

std::string
ParityCode::name() const
{
    return "(" + std::to_string(k + 1) + "," + std::to_string(k) + ") parity";
}

} // namespace tdc
