/**
 * @file
 * Generic Hsiao-style odd-weight-column SECDED code.
 */

#ifndef TDC_ECC_HSIAO_HH
#define TDC_ECC_HSIAO_HH

#include <vector>

#include "ecc/code.hh"

namespace tdc
{

/**
 * Single-error-correct double-error-detect (SECDED) code built with
 * the odd-weight-column construction of Hsiao: the parity-check matrix
 * H has r rows; every codeword bit contributes one distinct odd-weight
 * column. Data columns use weight >= 3 (smallest weights first, to
 * minimize XOR-tree size), check columns are the r unit vectors.
 *
 * Decoding:
 *  - syndrome zero                      -> clean
 *  - syndrome equals column i           -> single error at bit i, fixed
 *  - syndrome odd weight, not a column  -> detected (>= 3 odd errors)
 *  - syndrome even weight, nonzero      -> double error detected
 *
 * For k = 64 this yields the (72,64) code used in commercial caches;
 * for k = 256 it yields (266,256) — both word geometries used by the
 * paper (Figures 1, 2, 7).
 */
class HsiaoSecDedCode : public Code
{
  public:
    explicit HsiaoSecDedCode(size_t data_bits);

    size_t dataBits() const override { return k; }
    size_t checkBits() const override { return r; }
    BitVector computeCheck(const BitVector &data) const override;
    DecodeResult decode(const BitVector &codeword) const override;
    /** Allocation-free clean check (see Code::syndromeClean). */
    bool syndromeClean(const BitVector &codeword) const override;
    size_t correctCapability() const override { return 1; }
    size_t detectCapability() const override { return 2; }
    std::string name() const override;

    /**
     * Weight of the heaviest parity-check row: the widest XOR-tree
     * fan-in, used by the coding-latency model.
     */
    size_t maxRowWeight() const;

    /** Total number of ones in H: total XOR-tree gate count. */
    size_t totalRowWeight() const;

    /** Minimum r such that k data columns of odd weight >= 3 exist. */
    static size_t checkBitsFor(size_t data_bits);

  private:
    /** Column of H assigned to codeword bit @p pos, as an r-bit mask. */
    uint64_t column(size_t pos) const { return columns[pos]; }

    /** Row-major H: word @p w of the n-bit mask of parity row @p row. */
    uint64_t rowMask(size_t row, size_t w) const
    {
        return rowMasks[row * maskWords + w];
    }

    /** Syndrome of the first @p nbytes bytes of @p words via the
     *  per-byte table. @pre !byteSyndromes.empty() */
    uint64_t foldBytes(const uint64_t *words, size_t nbytes) const;

    /**
     * The accelerated-tier form of foldBytes: one whole 64-bit word
     * (8 table lookups) per iteration, spread over four independent
     * accumulators so the XOR reduction pipelines instead of forming
     * one serial dependency chain. Bit-identical to foldBytes.
     */
    uint64_t foldBytesUnrolled(const uint64_t *words, size_t nbytes) const;

    /** Dispatch between foldBytes and foldBytesUnrolled. */
    uint64_t fold(const uint64_t *words, size_t nbytes) const;

    /** Syndrome via the rowMasks fallback (k not byte-aligned). */
    uint64_t foldRowMasks(const uint64_t *words, size_t nwords) const;

    size_t k;
    size_t r;
    /** H columns for all n = k + r codeword bits (bit i of the mask is
     *  row i of H). */
    std::vector<uint64_t> columns;

    /**
     * H transposed into r row-masks over the n codeword bits (packed
     * 64-bit words, maskWords words per row): check/syndrome bit i is
     * popcount(codeword & rowMask_i) & 1, one AND+popcount per word
     * instead of a conditional XOR per bit.
     */
    std::vector<uint64_t> rowMasks;
    size_t maskWords;

    /**
     * syndrome -> codeword bit position (or -1), replacing the linear
     * column scan in decode. Built only while 2^r stays small; decode
     * falls back to the scan when empty.
     */
    std::vector<int32_t> syndromeToPos;

    /**
     * Per-byte syndrome contributions: entry [i*256 + b] is the XOR of
     * the H columns of codeword byte i selected by the bits of b. A
     * full syndrome is then ceil(n/8) table XORs — the software shape
     * of an 8-way-flattened XOR tree. Built when k is byte-aligned
     * (all geometries in the study); rowMasks is the general fallback.
     */
    std::vector<uint64_t> byteSyndromes;
};

} // namespace tdc

#endif // TDC_ECC_HSIAO_HH
