/**
 * @file
 * Generic Hsiao-style odd-weight-column SECDED code.
 */

#ifndef TDC_ECC_HSIAO_HH
#define TDC_ECC_HSIAO_HH

#include <vector>

#include "ecc/code.hh"

namespace tdc
{

/**
 * Single-error-correct double-error-detect (SECDED) code built with
 * the odd-weight-column construction of Hsiao: the parity-check matrix
 * H has r rows; every codeword bit contributes one distinct odd-weight
 * column. Data columns use weight >= 3 (smallest weights first, to
 * minimize XOR-tree size), check columns are the r unit vectors.
 *
 * Decoding:
 *  - syndrome zero                      -> clean
 *  - syndrome equals column i           -> single error at bit i, fixed
 *  - syndrome odd weight, not a column  -> detected (>= 3 odd errors)
 *  - syndrome even weight, nonzero      -> double error detected
 *
 * For k = 64 this yields the (72,64) code used in commercial caches;
 * for k = 256 it yields (266,256) — both word geometries used by the
 * paper (Figures 1, 2, 7).
 */
class HsiaoSecDedCode : public Code
{
  public:
    explicit HsiaoSecDedCode(size_t data_bits);

    size_t dataBits() const override { return k; }
    size_t checkBits() const override { return r; }
    BitVector computeCheck(const BitVector &data) const override;
    DecodeResult decode(const BitVector &codeword) const override;
    size_t correctCapability() const override { return 1; }
    size_t detectCapability() const override { return 2; }
    std::string name() const override;

    /**
     * Weight of the heaviest parity-check row: the widest XOR-tree
     * fan-in, used by the coding-latency model.
     */
    size_t maxRowWeight() const;

    /** Total number of ones in H: total XOR-tree gate count. */
    size_t totalRowWeight() const;

    /** Minimum r such that k data columns of odd weight >= 3 exist. */
    static size_t checkBitsFor(size_t data_bits);

  private:
    /** Column of H assigned to codeword bit @p pos, as an r-bit mask. */
    uint64_t column(size_t pos) const { return columns[pos]; }

    size_t k;
    size_t r;
    /** H columns for all n = k + r codeword bits (bit i of the mask is
     *  row i of H). */
    std::vector<uint64_t> columns;
};

} // namespace tdc

#endif // TDC_ECC_HSIAO_HH
