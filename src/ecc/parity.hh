/**
 * @file
 * Single-bit even parity: the lightest error-detecting code.
 */

#ifndef TDC_ECC_PARITY_HH
#define TDC_ECC_PARITY_HH

#include "ecc/code.hh"

namespace tdc
{

/**
 * Even parity over the whole data word: detects any odd number of bit
 * flips (guaranteed: any single flip). Detection only.
 */
class ParityCode : public Code
{
  public:
    explicit ParityCode(size_t data_bits);

    size_t dataBits() const override { return k; }
    size_t checkBits() const override { return 1; }
    BitVector computeCheck(const BitVector &data) const override;
    DecodeResult decode(const BitVector &codeword) const override;
    size_t correctCapability() const override { return 0; }
    size_t detectCapability() const override { return 1; }
    std::string name() const override;

  private:
    size_t k;
};

} // namespace tdc

#endif // TDC_ECC_PARITY_HH
