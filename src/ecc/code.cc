#include "ecc/code.hh"

#include <cassert>

namespace tdc
{

BitVector
Code::encode(const BitVector &data) const
{
    assert(data.size() == dataBits());
    BitVector codeword(data);
    codeword.append(computeCheck(data));
    return codeword;
}

} // namespace tdc
