#include "ecc/code.hh"

#include <cassert>

namespace tdc
{

BitVector
Code::encode(const BitVector &data) const
{
    assert(data.size() == dataBits());
    // Build the codeword at its final size: two word-parallel slice
    // deposits, no append/regrow step.
    BitVector codeword(dataBits() + checkBits());
    codeword.setSlice(0, data);
    codeword.setSlice(dataBits(), computeCheck(data));
    return codeword;
}

} // namespace tdc
