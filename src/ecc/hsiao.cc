#include "ecc/hsiao.hh"

#include <bit>
#include <cassert>

namespace tdc
{

namespace
{

/** Number of r-bit values with odd weight >= 3. */
uint64_t
oddHeavyColumnCount(size_t r)
{
    // 2^(r-1) odd-weight vectors total, minus the r weight-1 vectors.
    return (uint64_t(1) << (r - 1)) - r;
}

} // namespace

size_t
HsiaoSecDedCode::checkBitsFor(size_t data_bits)
{
    for (size_t r = 4; r < 64; ++r) {
        if (oddHeavyColumnCount(r) >= data_bits)
            return r;
    }
    assert(false && "data word too wide");
    return 0;
}

HsiaoSecDedCode::HsiaoSecDedCode(size_t data_bits)
    : k(data_bits), r(checkBitsFor(data_bits))
{
    // Assign data columns: all odd-weight-(>=3) r-bit vectors, smallest
    // weight first (Hsiao's construction minimizes total H weight and
    // hence encoder XOR count); within a weight, ascending numeric
    // order for determinism.
    columns.reserve(k + r);
    for (size_t w = 3; columns.size() < k && w <= r; w += 2) {
        for (uint64_t v = 0; v < (uint64_t(1) << r) && columns.size() < k;
             ++v) {
            if (size_t(std::popcount(v)) == w)
                columns.push_back(v);
        }
    }
    assert(columns.size() == k);
    // Check columns: unit vectors.
    for (size_t i = 0; i < r; ++i)
        columns.push_back(uint64_t(1) << i);
}

BitVector
HsiaoSecDedCode::computeCheck(const BitVector &data) const
{
    assert(data.size() == k);
    uint64_t acc = 0;
    for (size_t i = 0; i < k; ++i) {
        if (data.get(i))
            acc ^= columns[i];
    }
    BitVector check(r, acc);
    return check;
}

DecodeResult
HsiaoSecDedCode::decode(const BitVector &codeword) const
{
    assert(codeword.size() == k + r);
    DecodeResult result;
    result.data = codeword.slice(0, k);

    uint64_t syndrome = 0;
    for (size_t i = 0; i < k + r; ++i) {
        if (codeword.get(i))
            syndrome ^= columns[i];
    }

    if (syndrome == 0) {
        result.status = DecodeStatus::kClean;
        return result;
    }

    if (std::popcount(syndrome) % 2 == 1) {
        // Odd syndrome: try single-bit correction.
        for (size_t i = 0; i < k + r; ++i) {
            if (columns[i] == syndrome) {
                if (i < k)
                    result.data.flip(i);
                result.correctedPositions.push_back(i);
                result.status = DecodeStatus::kCorrected;
                return result;
            }
        }
        // Odd-weight syndrome matching no column: >= 3 errors.
        result.status = DecodeStatus::kDetectedUncorrectable;
        return result;
    }

    // Even nonzero syndrome: double-bit error detected.
    result.status = DecodeStatus::kDetectedUncorrectable;
    return result;
}

size_t
HsiaoSecDedCode::maxRowWeight() const
{
    size_t best = 0;
    for (size_t row = 0; row < r; ++row) {
        size_t weight = 0;
        for (size_t i = 0; i < k + r; ++i)
            weight += (columns[i] >> row) & 1;
        best = std::max(best, weight);
    }
    return best;
}

size_t
HsiaoSecDedCode::totalRowWeight() const
{
    size_t total = 0;
    for (uint64_t c : columns)
        total += std::popcount(c);
    return total;
}

std::string
HsiaoSecDedCode::name() const
{
    return "(" + std::to_string(k + r) + "," + std::to_string(k) +
           ") SECDED";
}

} // namespace tdc
