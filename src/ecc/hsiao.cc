#include "ecc/hsiao.hh"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/cpu_features.hh"

namespace tdc
{

namespace
{

/** Number of r-bit values with odd weight >= 3. */
uint64_t
oddHeavyColumnCount(size_t r)
{
    // 2^(r-1) odd-weight vectors total, minus the r weight-1 vectors.
    return (uint64_t(1) << (r - 1)) - r;
}

} // namespace

size_t
HsiaoSecDedCode::checkBitsFor(size_t data_bits)
{
    for (size_t r = 4; r < 64; ++r) {
        if (oddHeavyColumnCount(r) >= data_bits)
            return r;
    }
    assert(false && "data word too wide");
    return 0;
}

HsiaoSecDedCode::HsiaoSecDedCode(size_t data_bits)
    : k(data_bits), r(checkBitsFor(data_bits))
{
    // Assign data columns: all odd-weight-(>=3) r-bit vectors, smallest
    // weight first (Hsiao's construction minimizes total H weight and
    // hence encoder XOR count); within a weight, ascending numeric
    // order for determinism.
    columns.reserve(k + r);
    for (size_t w = 3; columns.size() < k && w <= r; w += 2) {
        for (uint64_t v = 0; v < (uint64_t(1) << r) && columns.size() < k;
             ++v) {
            if (size_t(std::popcount(v)) == w)
                columns.push_back(v);
        }
    }
    assert(columns.size() == k);
    // Check columns: unit vectors.
    for (size_t i = 0; i < r; ++i)
        columns.push_back(uint64_t(1) << i);

    // Transpose H into r packed row-masks so encode/syndrome become
    // one AND+popcount per 64 codeword bits (the word-parallel form of
    // Hsiao's XOR trees).
    maskWords = (k + r + 63) / 64;
    rowMasks.assign(r * maskWords, 0);
    for (size_t i = 0; i < k + r; ++i) {
        for (size_t row = 0; row < r; ++row) {
            if ((columns[i] >> row) & 1)
                rowMasks[row * maskWords + i / 64] |= uint64_t(1) << (i % 64);
        }
    }

    // Precompute syndrome -> bit position. r is small (8 for k = 64,
    // 10 for k = 256), so the 2^r table is tiny; the guard keeps a
    // pathological wide code from allocating gigabytes.
    if (r <= 20) {
        syndromeToPos.assign(size_t(1) << r, -1);
        for (size_t i = 0; i < k + r; ++i)
            syndromeToPos[columns[i]] = int32_t(i);
    }

    // Per-byte syndrome table (see header). Only byte-aligned data
    // widths qualify: then codeword byte i < k/8 is pure data, so the
    // same table serves computeCheck (over data bytes) and the full
    // syndrome (over all codeword bytes).
    if (k % 8 == 0) {
        const size_t nBytes = (k + r + 7) / 8;
        byteSyndromes.assign(nBytes * 256, 0);
        for (size_t i = 0; i < nBytes; ++i) {
            const size_t bits = std::min<size_t>(8, k + r - i * 8);
            for (size_t b = 1; b < 256; ++b) {
                uint64_t acc = 0;
                for (size_t j = 0; j < bits; ++j) {
                    if ((b >> j) & 1)
                        acc ^= columns[i * 8 + j];
                }
                byteSyndromes[i * 256 + b] = acc;
            }
        }
    }
}

uint64_t
HsiaoSecDedCode::foldBytes(const uint64_t *words, size_t nbytes) const
{
    uint64_t syn = 0;
    for (size_t i = 0; i < nbytes; ++i)
        syn ^= byteSyndromes[i * 256 + ((words[i / 8] >> (8 * (i % 8))) &
                                        0xFF)];
    return syn;
}

uint64_t
HsiaoSecDedCode::foldBytesUnrolled(const uint64_t *words,
                                   size_t nbytes) const
{
    const uint64_t *tbl = byteSyndromes.data();
    uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    size_t i = 0;
    for (; i + 8 <= nbytes; i += 8) {
        const uint64_t w = words[i / 8];
        const uint64_t *t = tbl + i * 256;
        s0 ^= t[0 * 256 + (w & 0xFF)];
        s1 ^= t[1 * 256 + ((w >> 8) & 0xFF)];
        s2 ^= t[2 * 256 + ((w >> 16) & 0xFF)];
        s3 ^= t[3 * 256 + ((w >> 24) & 0xFF)];
        s0 ^= t[4 * 256 + ((w >> 32) & 0xFF)];
        s1 ^= t[5 * 256 + ((w >> 40) & 0xFF)];
        s2 ^= t[6 * 256 + ((w >> 48) & 0xFF)];
        s3 ^= t[7 * 256 + (w >> 56)];
    }
    for (; i < nbytes; ++i)
        s0 ^= tbl[i * 256 + ((words[i / 8] >> (8 * (i % 8))) & 0xFF)];
    return (s0 ^ s1) ^ (s2 ^ s3);
}

uint64_t
HsiaoSecDedCode::fold(const uint64_t *words, size_t nbytes) const
{
    return simdBmi2Active() ? foldBytesUnrolled(words, nbytes)
                            : foldBytes(words, nbytes);
}

uint64_t
HsiaoSecDedCode::foldRowMasks(const uint64_t *words, size_t nwords) const
{
    uint64_t acc = 0;
    for (size_t row = 0; row < r; ++row) {
        uint64_t fold = 0;
        for (size_t w = 0; w < nwords; ++w)
            fold ^= words[w] & rowMask(row, w);
        acc |= uint64_t(std::popcount(fold) & 1) << row;
    }
    return acc;
}

BitVector
HsiaoSecDedCode::computeCheck(const BitVector &data) const
{
    assert(data.size() == k);
    if (!byteSyndromes.empty())
        return BitVector(r, fold(data.wordData(), k / 8));

    // Fallback: check[row] = parity(data & rowMask_row). The row masks
    // span all n bits, but the check columns are unit vectors, so over
    // the data region the first ceil(k/64) words are exactly the data
    // part of each row; data's top-word invariant zeroes kill any
    // check-column bits sharing the boundary word.
    return BitVector(r, foldRowMasks(data.wordData(), data.wordCount()));
}

bool
HsiaoSecDedCode::syndromeClean(const BitVector &codeword) const
{
    assert(codeword.size() == k + r);
    const uint64_t *words = codeword.wordData();
    if (!byteSyndromes.empty())
        return fold(words, (k + r + 7) / 8) == 0;
    return foldRowMasks(words, maskWords) == 0;
}

DecodeResult
HsiaoSecDedCode::decode(const BitVector &codeword) const
{
    assert(codeword.size() == k + r);
    DecodeResult result;
    result.data = codeword.slice(0, k);

    const uint64_t *words = codeword.wordData();
    const uint64_t syndrome = !byteSyndromes.empty()
                                  ? fold(words, (k + r + 7) / 8)
                                  : foldRowMasks(words, maskWords);

    if (syndrome == 0) {
        result.status = DecodeStatus::kClean;
        return result;
    }

    if (std::popcount(syndrome) % 2 == 1) {
        // Odd syndrome: single-bit correction via the lookup table
        // (columns scan only if the table was too wide to build).
        int32_t pos = -1;
        if (!syndromeToPos.empty()) {
            pos = syndromeToPos[syndrome];
        } else {
            for (size_t i = 0; i < k + r; ++i) {
                if (columns[i] == syndrome) {
                    pos = int32_t(i);
                    break;
                }
            }
        }
        if (pos >= 0) {
            if (size_t(pos) < k)
                result.data.flip(size_t(pos));
            result.correctedPositions.push_back(size_t(pos));
            result.status = DecodeStatus::kCorrected;
            return result;
        }
        // Odd-weight syndrome matching no column: >= 3 errors.
        result.status = DecodeStatus::kDetectedUncorrectable;
        return result;
    }

    // Even nonzero syndrome: double-bit error detected.
    result.status = DecodeStatus::kDetectedUncorrectable;
    return result;
}

size_t
HsiaoSecDedCode::maxRowWeight() const
{
    size_t best = 0;
    for (size_t row = 0; row < r; ++row) {
        size_t weight = 0;
        for (size_t i = 0; i < k + r; ++i)
            weight += (columns[i] >> row) & 1;
        best = std::max(best, weight);
    }
    return best;
}

size_t
HsiaoSecDedCode::totalRowWeight() const
{
    size_t total = 0;
    for (uint64_t c : columns)
        total += std::popcount(c);
    return total;
}

std::string
HsiaoSecDedCode::name() const
{
    return "(" + std::to_string(k + r) + "," + std::to_string(k) +
           ") SECDED";
}

} // namespace tdc
