#include "ecc/code_factory.hh"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <stdexcept>

#include "ecc/bch.hh"
#include "ecc/hsiao.hh"
#include "ecc/interleaved_parity.hh"
#include "ecc/parity.hh"

namespace tdc
{

std::string
codeKindName(CodeKind kind)
{
    switch (kind) {
      case CodeKind::kParity: return "Parity";
      case CodeKind::kEdc8: return "EDC8";
      case CodeKind::kEdc16: return "EDC16";
      case CodeKind::kEdc32: return "EDC32";
      case CodeKind::kSecDed: return "SECDED";
      case CodeKind::kDecTed: return "DECTED";
      case CodeKind::kQecPed: return "QECPED";
      case CodeKind::kOecNed: return "OECNED";
    }
    assert(false);
    return {};
}

CodeKind
parseCodeKind(const std::string &name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    for (CodeKind kind : kAllCodeKinds) {
        std::string label = codeKindName(kind);
        std::transform(label.begin(), label.end(), label.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (lower == label)
            return kind;
    }
    throw std::invalid_argument("unknown code \"" + name + "\"");
}

CodePtr
makeCode(CodeKind kind, size_t data_bits)
{
    switch (kind) {
      case CodeKind::kParity:
        return std::make_shared<ParityCode>(data_bits);
      case CodeKind::kEdc8:
        return std::make_shared<InterleavedParityCode>(data_bits, 8);
      case CodeKind::kEdc16:
        return std::make_shared<InterleavedParityCode>(data_bits, 16);
      case CodeKind::kEdc32:
        return std::make_shared<InterleavedParityCode>(data_bits, 32);
      case CodeKind::kSecDed:
        return std::make_shared<HsiaoSecDedCode>(data_bits);
      case CodeKind::kDecTed:
        return std::make_shared<ExtendedBchCode>(data_bits, 2, "DECTED");
      case CodeKind::kQecPed:
        return std::make_shared<ExtendedBchCode>(data_bits, 4, "QECPED");
      case CodeKind::kOecNed:
        return std::make_shared<ExtendedBchCode>(data_bits, 8, "OECNED");
    }
    assert(false);
    return nullptr;
}

} // namespace tdc
