/**
 * @file
 * Abstract interface for block error-detecting / error-correcting codes.
 *
 * Every protection scheme in the repository (parity, interleaved parity
 * EDCn, Hsiao SECDED, BCH DECTED/QECPED/OECNED) implements this
 * interface, so the array, cache and 2D-coding layers are agnostic to
 * the concrete code in each dimension.
 */

#ifndef TDC_ECC_CODE_HH
#define TDC_ECC_CODE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/bit_vector.hh"

namespace tdc
{

/** Outcome of decoding one (possibly corrupted) codeword. */
enum class DecodeStatus
{
    /** Syndrome clean: no error observed. */
    kClean,
    /** Error(s) observed and corrected; data is repaired. */
    kCorrected,
    /** Error observed but beyond correction capability. */
    kDetectedUncorrectable,
};

/** Result of Code::decode. */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::kClean;

    /**
     * The decoded data bits. Valid for kClean and kCorrected; for
     * kDetectedUncorrectable it holds the raw (uncorrected) data bits.
     */
    BitVector data;

    /**
     * Codeword bit positions the decoder flipped (empty unless
     * status == kCorrected). Positions use the codeword layout
     * [data | check].
     */
    std::vector<size_t> correctedPositions;

    bool clean() const { return status == DecodeStatus::kClean; }
    bool corrected() const { return status == DecodeStatus::kCorrected; }
    bool uncorrectable() const
    {
        return status == DecodeStatus::kDetectedUncorrectable;
    }
};

/**
 * A systematic block code over k data bits with r check bits.
 *
 * Codeword layout is always [data bits 0..k-1 | check bits 0..r-1].
 */
class Code
{
  public:
    virtual ~Code() = default;

    /** Number of data bits (k). */
    virtual size_t dataBits() const = 0;

    /** Number of check bits (r). */
    virtual size_t checkBits() const = 0;

    /** Codeword length (n = k + r). */
    size_t codewordBits() const { return dataBits() + checkBits(); }

    /** Storage overhead r/k. */
    double storageOverhead() const
    {
        return double(checkBits()) / double(dataBits());
    }

    /** Compute the r check bits for @p data. @pre data.size() == k */
    virtual BitVector computeCheck(const BitVector &data) const = 0;

    /** Encode @p data into a full [data|check] codeword. */
    BitVector encode(const BitVector &data) const;

    /**
     * Decode a full [data|check] codeword, correcting up to
     * correctCapability() bit errors.
     */
    virtual DecodeResult decode(const BitVector &codeword) const = 0;

    /**
     * True iff the codeword's syndrome is zero (it would decode
     * kClean). Semantically identical to decode(cw).clean() — the
     * default is exactly that — but overridable with an
     * allocation-free syndrome-only check, which the batched
     * whole-line codec (core/line_codec.hh) leans on for scrub and
     * recovery sweeps where almost every word is clean.
     */
    virtual bool syndromeClean(const BitVector &codeword) const
    {
        return decode(codeword).clean();
    }

    /**
     * Number of arbitrary-position bit errors the code is guaranteed
     * to correct (t). 0 for detection-only codes.
     */
    virtual size_t correctCapability() const = 0;

    /**
     * Number of arbitrary-position bit errors guaranteed to be at
     * least detected (d >= t). For EDCn this counts a *contiguous*
     * burst, see burstDetectCapability().
     */
    virtual size_t detectCapability() const = 0;

    /**
     * Longest contiguous burst (within one codeword) guaranteed to be
     * detected. Defaults to detectCapability().
     */
    virtual size_t burstDetectCapability() const { return detectCapability(); }

    /** Minimum Hamming distance implied by (t, d): d_min >= t+d+1. */
    size_t minDistance() const
    {
        return correctCapability() + detectCapability() + 1;
    }

    /** Human-readable name, e.g. "(72,64) SECDED". */
    virtual std::string name() const = 0;
};

/** Owning handle used across the library. */
using CodePtr = std::shared_ptr<const Code>;

} // namespace tdc

#endif // TDC_ECC_CODE_HH
