/**
 * @file
 * Configuration of a 2D-protected array: the horizontal code choice,
 * physical interleave degree, and vertical interleave factor.
 */

#ifndef TDC_CORE_TWOD_CONFIG_HH
#define TDC_CORE_TWOD_CONFIG_HH

#include <cstddef>
#include <string>

#include "ecc/code_factory.hh"

namespace tdc
{

/**
 * Parameters of one 2D-coded memory bank (Section 4 of the paper).
 *
 * The paper's two cache configurations:
 *  - L1: EDC8 horizontal over 64-bit words, 4-way interleaved,
 *        EDC32 vertical (32 parity rows per bank).
 *  - L2: EDC16 horizontal over 256-bit words, 2-way interleaved,
 *        EDC32 vertical.
 * Both guarantee detection+correction of clustered errors up to
 * 32x32 bits.
 */
struct TwoDimConfig
{
    /** Horizontal per-word code. */
    CodeKind horizontalKind = CodeKind::kEdc8;

    /** Data bits per logical word. */
    size_t wordBits = 64;

    /** Physical bit-interleave degree along rows. */
    size_t interleaveDegree = 4;

    /**
     * Vertical interleave factor V: number of parity rows per bank;
     * data row r belongs to parity group r mod V.
     */
    size_t verticalParityRows = 32;

    /** Data rows per bank. */
    size_t dataRows = 256;

    /** The paper's L1 configuration (EDC8+Intv4, EDC32). */
    static TwoDimConfig l1Default();

    /** The paper's L2 configuration (EDC16+Intv2, EDC32). */
    static TwoDimConfig l2Default();

    /** Yield-enhancing variant: SECDED horizontal (Section 5.2). */
    static TwoDimConfig secdedHorizontal(size_t word_bits = 64,
                                         size_t degree = 4);

    /** Guaranteed correctable cluster width (physical columns). */
    size_t clusterWidthCoverage() const;

    /** Guaranteed correctable cluster height (rows). */
    size_t clusterHeightCoverage() const { return verticalParityRows; }

    std::string describe() const;
};

} // namespace tdc

#endif // TDC_CORE_TWOD_CONFIG_HH
