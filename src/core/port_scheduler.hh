/**
 * @file
 * Cache-port occupancy model with the paper's port-stealing
 * optimization for read-before-write operations (Section 4).
 */

#ifndef TDC_CORE_PORT_SCHEDULER_HH
#define TDC_CORE_PORT_SCHEDULER_HH

#include <cstdint>
#include <deque>

namespace tdc
{

/**
 * Models the port occupancy of one cache (or one cache bank).
 *
 * Each cycle offers `ports` access slots. Demand accesses occupy a
 * slot in FIFO order; if the current cycle is full the access spills
 * into the next cycle (reported as delay). A 2D-protected cache turns
 * every write into a read-before-write: the read half is an *extra*
 * access. Without port stealing it is scheduled like any demand
 * access (in front of the write). With port stealing, the scheduler
 * first tries to absorb it into an idle slot observed during the past
 * `stealWindow` cycles — the store-queue residency during which the
 * read can issue early, after [27] — and only charges a slot when no
 * idle slot was available.
 */
class PortScheduler
{
  public:
    /**
     * @param ports access slots per cycle
     * @param steal_window how many past cycles of idle slots a stolen
     *        read may use (0 disables port stealing)
     */
    PortScheduler(unsigned ports, unsigned steal_window);

    /** Advance time to @p cycle (monotonic). */
    void advanceTo(uint64_t cycle);

    /**
     * Issue a demand access (read, write, or fill) at the current
     * cycle. Returns the queueing delay in cycles (0 = issued this
     * cycle).
     */
    unsigned issueDemand();

    /**
     * Issue the read half of a read-before-write. Returns the number
     * of *charged* port slots (0 if the read was absorbed by port
     * stealing, 1 if it consumed a demand slot).
     */
    unsigned issueStolenRead();

    uint64_t demandIssued() const { return demandCount; }
    uint64_t stolenAbsorbed() const { return absorbedCount; }
    uint64_t stolenCharged() const { return chargedCount; }
    uint64_t totalDelay() const { return delaySum; }

    /** Fraction of RBW reads hidden by stealing (0 if none issued). */
    double stealEfficiency() const;

  private:
    /** Free slots at the horizon (cycle where the next access lands). */
    void refreshHorizon();

    unsigned ports;
    unsigned stealWindow;
    uint64_t now = 0;

    /** Next cycle with a free slot >= now, and slots already used in it. */
    uint64_t horizonCycle = 0;
    unsigned horizonUsed = 0;

    /** Idle slots accumulated over the last stealWindow cycles. */
    std::deque<unsigned> idleHistory;
    unsigned idleBank = 0;

    uint64_t demandCount = 0;
    uint64_t absorbedCount = 0;
    uint64_t chargedCount = 0;
    uint64_t delaySum = 0;
};

} // namespace tdc

#endif // TDC_CORE_PORT_SCHEDULER_HH
