#include "core/twod_array.hh"

#include <cassert>
#include <set>

namespace tdc
{

TwoDimArray::TwoDimArray(const TwoDimConfig &config)
    : cfg(config),
      horizontal(makeCode(cfg.horizontalKind, cfg.wordBits)),
      map(horizontal->codewordBits(), cfg.interleaveDegree),
      line(*horizontal, map),
      data(cfg.dataRows, map.rowBits()),
      parity(cfg.dataRows, map.rowBits(), cfg.verticalParityRows)
{
}

void
TwoDimArray::writeWord(size_t row, size_t slot, const BitVector &value)
{
    assert(value.size() == horizontal->dataBits());
    // Step 1 (Figure 4(a)): read old data and vertical parity. The
    // read-before-write is what the cache-level performance study
    // charges for.
    data.readRowInto(row, rowScratch);
    ++stat.readBeforeWrites;

    // Step 2: write new data & horizontal code, and fold old ^ new
    // into the vertical parity row — all through recycled scratch
    // buffers, no per-access row temporaries.
    deltaScratch = rowScratch; // old row
    map.depositWord(rowScratch, slot, horizontal->encode(value));
    data.writeRow(row, rowScratch);
    deltaScratch ^= rowScratch; // old ^ new
    parity.applyDelta(row, deltaScratch);
    ++stat.writes;
}

AccessResult
TwoDimArray::readWord(size_t row, size_t slot)
{
    ++stat.reads;
    // Error-free fast path: borrow the stored row as a span and gather
    // the codeword straight out of it — the only per-access work is
    // the strided extract plus the horizontal syndrome. Rows carrying
    // a stuck-at overlay are materialized through the scratch buffer.
    if (!data.rowHasStuck(row)) {
        map.extractWordInto(data.viewRow(row), slot, cwScratch);
        ++stat.rowBorrows;
    } else {
        data.readRowInto(row, rowScratch);
        map.extractWordInto(rowScratch, slot, cwScratch);
        ++stat.rowCopies;
    }
    DecodeResult decoded = horizontal->decode(cwScratch);

    AccessResult result;
    result.status = decoded.status;
    result.data = std::move(decoded.data);

    if (result.status == DecodeStatus::kClean)
        return result;

    if (result.status == DecodeStatus::kCorrected) {
        // In-line horizontal correction (SECDED path): repair the
        // stored copy. The row was already read above — on the borrow
        // path re-materialize it without charging a second port
        // access; on the stuck path rowScratch still holds it. The
        // vertical parity is *not* updated: it already reflects the
        // intended (pre-error) value, which is exactly what the
        // correction restores. Errors never update parity; only
        // genuine value-changing writes do.
        if (!data.rowHasStuck(row))
            data.copyRowInto(row, rowScratch);
        map.depositWord(rowScratch, slot, horizontal->encode(result.data));
        data.writeRow(row, rowScratch);
        ++stat.inlineCorrections;
        return result;
    }

    // Horizontal detection without correction: enter 2D recovery mode
    // and retry the access once.
    const RecoveryReport report = recover();
    DecodeResult retry =
        horizontal->decode(map.extractWord(data.readRow(row), slot));
    result.status = report.success && !retry.uncorrectable()
                        ? retry.status
                        : DecodeStatus::kDetectedUncorrectable;
    result.data = std::move(retry.data);
    return result;
}

bool
TwoDimArray::rowHealthy(const BitVector &row_bits, bool &any_detect) const
{
    any_detect = false;
    // Fast path: a row whose every syndrome vanishes is healthy with
    // no further questions — the common case in every sweep.
    if (line.lineClean(row_bits))
        return true;
    for (size_t slot = 0; slot < map.degree(); ++slot) {
        const DecodeResult d =
            horizontal->decode(map.extractWord(row_bits, slot));
        if (d.uncorrectable()) {
            any_detect = true;
            return false;
        }
    }
    return true;
}

bool
TwoDimArray::inlineCorrectRow(size_t row)
{
    BitVector fixed_row = data.readRow(row);
    bool changed = false;
    if (!line.correctLine(fixed_row, changed))
        return false;
    if (changed) {
        // Corrections restore the value the parity already accounts
        // for, so no parity delta is applied (see readWord).
        data.writeRow(row, fixed_row);
    }
    return true;
}

bool
TwoDimArray::reconstructRow(size_t row, RecoveryReport &report)
{
    // Figure 4(b) main loop: Correction starts as the parity row and
    // absorbs every *other* row of the group; the XOR of all of them
    // is the original content of the faulty row.
    const size_t g = parity.groupOf(row);
    BitVector correction = parity.readGroup(g);

    for (size_t r = g; r < rows(); r += parity.groups()) {
        if (r == row)
            continue;
        const BitVector other = data.readRow(r);
        ++report.rowReads;
        bool detect = false;
        if (!rowHealthy(other, detect)) {
            // Another faulty row shares this parity group: the error
            // spans more than V rows; the row path cannot help.
            return false;
        }
        correction ^= other;
    }

    data.writeRow(row, correction);
    ++report.rowReads;

    // Verify the reconstruction: every slot must now decode.
    bool detect = false;
    if (!rowHealthy(data.readRow(row), detect))
        return false;
    // Clear any horizontal-correctable residue (stuck cells under
    // SECDED horizontal).
    inlineCorrectRow(row);
    report.rowsReconstructed.push_back(row);
    return true;
}

bool
TwoDimArray::recoverViaColumns(RecoveryReport &report)
{
    report.usedColumnPath = true;

    // Locate suspect columns: a column is suspect if any parity group
    // sees a vertical mismatch in it (odd number of corrupted cells
    // among the group's rows).
    BitVector suspects(map.rowBits());
    for (size_t g = 0; g < parity.groups(); ++g) {
        BitVector acc = parity.readGroup(g);
        for (size_t r = g; r < rows(); r += parity.groups()) {
            acc ^= data.readRow(r);
            ++report.rowReads;
        }
        suspects |= acc;
    }
    if (suspects.none())
        return false; // vertical code is blind to this pattern

    // For every row the horizontal code flags, resolve which suspect
    // columns are flipped. The horizontal syndrome identifies the
    // faulty parity classes within each word; if exactly one suspect
    // column of that word falls in a flagged class, it is the culprit.
    const auto *edc =
        dynamic_cast<const InterleavedParityCode *>(horizontal.get());

    for (size_t row = 0; row < rows(); ++row) {
        const BitVector row_bits = data.readRow(row);
        ++report.rowReads;
        BitVector fixed_row = row_bits;
        bool row_touched = false;

        for (size_t slot = 0; slot < map.degree(); ++slot) {
            const BitVector cw = map.extractWord(fixed_row, slot);
            DecodeResult d = horizontal->decode(cw);
            if (d.clean())
                continue;
            if (d.corrected()) {
                // SECDED horizontal pinpoints the bit directly.
                map.depositWord(fixed_row, slot,
                                horizontal->encode(d.data));
                row_touched = true;
                continue;
            }
            if (edc == nullptr)
                return false; // no class information to exploit

            // EDC horizontal: map flagged parity classes to the
            // unique suspect column in each class.
            const BitVector syn = edc->syndrome(cw);
            BitVector repaired = cw;
            for (size_t cls = 0; cls < syn.size(); ++cls) {
                if (!syn.get(cls))
                    continue;
                long hit = -1;
                for (size_t bit = cls; bit < edc->codewordBits();
                     bit += syn.size()) {
                    const size_t col = map.physicalColumn(slot, bit);
                    if (suspects.get(col)) {
                        if (hit >= 0) {
                            hit = -2; // ambiguous: two suspects in class
                            break;
                        }
                        hit = long(bit);
                    }
                }
                if (hit < 0)
                    return false; // unresolvable class
                repaired.flip(size_t(hit));
            }
            if (!edc->syndrome(repaired).none())
                return false;
            map.depositWord(fixed_row, slot, repaired);
            row_touched = true;
        }

        if (row_touched) {
            // Again: repairs restore the parity-accounted value, so
            // the vertical code is left untouched.
            data.writeRow(row, fixed_row);
        }
    }

    // Record which suspect columns were involved.
    for (size_t c = 0; c < suspects.size(); ++c) {
        if (suspects.get(c))
            report.columnsRepaired.push_back(c);
    }
    return true;
}

RecoveryReport
TwoDimArray::recover()
{
    ++stat.recoveries;
    RecoveryReport report;

    // Sweep the bank (BIST-style march): collect faulty rows.
    std::vector<size_t> faulty;
    for (size_t r = 0; r < rows(); ++r) {
        const BitVector row_bits = data.readRow(r);
        ++report.rowReads;
        bool detect = false;
        if (!rowHealthy(row_bits, detect))
            faulty.push_back(r);
        else
            inlineCorrectRow(r); // grey box: horizontal single-bit fix
    }

    bool ok = true;
    bool need_column_path = false;
    for (size_t r : faulty) {
        // A row already repaired by a previous reconstruction (or by
        // the column path) is skipped.
        bool detect = false;
        if (rowHealthy(data.readRow(r), detect))
            continue;
        if (!reconstructRow(r, report)) {
            need_column_path = true;
            break;
        }
    }

    if (need_column_path) {
        ok = recoverViaColumns(report);
        // The column path may leave rows that the row path can now
        // finish (mixed patterns); run one more pass.
        if (ok) {
            for (size_t r = 0; r < rows(); ++r) {
                bool detect = false;
                if (!rowHealthy(data.readRow(r), detect)) {
                    ++report.rowReads;
                    if (!reconstructRow(r, report)) {
                        ok = false;
                        break;
                    }
                }
            }
        }
    }

    report.success = ok && verifyClean();
    if (!report.success)
        ++stat.recoveryFailures;
    lastReport = report;
    return report;
}

bool
TwoDimArray::scrub()
{
    for (size_t r = 0; r < rows(); ++r) {
        bool detect = false;
        if (!rowHealthy(data.readRow(r), detect)) {
            const RecoveryReport report = recover();
            return report.success;
        }
        inlineCorrectRow(r);
    }
    return true;
}

bool
TwoDimArray::verifyClean() const
{
    // "Clean" means no data loss: a slot that decodes kCorrected is
    // healthy — a stuck-at cell under a SECDED horizontal code is
    // corrected in line on every read forever (the Section 5.2 yield
    // usage), so it must not fail verification.
    for (size_t r = 0; r < rows(); ++r) {
        const BitVector row_bits = data.readRow(r);
        if (line.lineClean(row_bits))
            continue;
        for (size_t slot = 0; slot < map.degree(); ++slot) {
            if (horizontal->decode(map.extractWord(row_bits, slot))
                    .uncorrectable())
                return false;
        }
    }
    return true;
}

void
TwoDimArray::rebuildParity()
{
    for (size_t g = 0; g < parity.groups(); ++g) {
        BitVector acc(map.rowBits());
        for (size_t r = g; r < rows(); r += parity.groups())
            acc ^= data.readRow(r);
        parity.writeGroup(g, acc);
    }
}

bool
TwoDimArray::verifyParity() const
{
    for (size_t g = 0; g < parity.groups(); ++g) {
        BitVector acc = parity.readGroup(g);
        for (size_t r = g; r < rows(); r += parity.groups())
            acc ^= data.readRow(r);
        if (acc.any())
            return false;
    }
    return true;
}

double
TwoDimArray::storageOverhead() const
{
    // Horizontal check bits per word + vertical parity rows per bank.
    return horizontal->storageOverhead() + parity.storageOverhead();
}

} // namespace tdc
