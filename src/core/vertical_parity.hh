/**
 * @file
 * The vertical error-coding dimension: interleaved parity rows
 * maintained across data rows, kept off the access critical path.
 */

#ifndef TDC_CORE_VERTICAL_PARITY_HH
#define TDC_CORE_VERTICAL_PARITY_HH

#include <cstdint>

#include "array/memory_array.hh"
#include "common/bit_vector.hh"

namespace tdc
{

/**
 * V interleaved vertical parity rows over an R-row data bank: parity
 * row g holds the column-wise XOR of every data row r with
 * r mod V == g (the paper's "EDC32" vertical code when V = 32).
 *
 * The parity rows live in their own small MemoryArray so that faults
 * can be injected into the vertical code as well. Updates are
 * incremental: on a data write, the caller supplies old XOR new and
 * the parity row absorbs it (the reason every write becomes a
 * read-before-write in a 2D-protected cache).
 */
class VerticalParity
{
  public:
    /**
     * @param data_rows number of covered data rows (R)
     * @param row_bits physical row width in bits
     * @param groups number of parity rows (V)
     */
    VerticalParity(size_t data_rows, size_t row_bits, size_t groups);

    size_t groups() const { return parity.rows(); }
    size_t rowBits() const { return parity.cols(); }

    /** Parity group of data row @p r. */
    size_t groupOf(size_t r) const { return r % groups(); }

    /** Read parity row @p g. */
    BitVector readGroup(size_t g) const { return parity.readRow(g); }

    /**
     * Incremental update after a data write: XOR @p delta
     * (= old row ^ new row) into the parity row of data row @p r.
     */
    void applyDelta(size_t r, const BitVector &delta);

    /** Overwrite parity row @p g (used by recovery / rebuild). */
    void writeGroup(size_t g, const BitVector &value);

    /** Storage for fault injection into the vertical code itself. */
    MemoryArray &cells() { return parity; }
    const MemoryArray &cells() const { return parity; }

    /** Extra storage overhead: V parity rows / R data rows. */
    double storageOverhead() const
    {
        return double(groups()) / double(coveredRows);
    }

    /** Number of incremental updates performed (stat). */
    uint64_t updateCount() const { return updates; }

  private:
    size_t coveredRows;
    MemoryArray parity;
    uint64_t updates = 0;
};

} // namespace tdc

#endif // TDC_CORE_VERTICAL_PARITY_HH
