/**
 * @file
 * Whole-cache data store built from multiple 2D-protected banks —
 * the granularity at which the paper deploys the scheme ("32 parity
 * rows per cache bank").
 */

#ifndef TDC_CORE_TWOD_CACHE_STORE_HH
#define TDC_CORE_TWOD_CACHE_STORE_HH

#include <memory>
#include <vector>

#include "core/twod_array.hh"

namespace tdc
{

/**
 * An array of independently protected TwoDimArray banks addressed by
 * a flat word index. Each bank has its own vertical parity rows, so a
 * multi-bit event in one bank is recovered locally while the others
 * keep serving accesses — and simultaneous events in different banks
 * are independently correctable.
 */
class TwoDimCacheStore
{
  public:
    /**
     * @param bank_config per-bank 2D configuration
     * @param banks number of banks
     */
    TwoDimCacheStore(const TwoDimConfig &bank_config, size_t banks);

    size_t banks() const { return bankArray.size(); }
    size_t wordsPerBank() const;
    size_t totalWords() const { return banks() * wordsPerBank(); }
    size_t dataBits() const;

    /** Bank that owns flat word index @p word. */
    size_t bankOf(size_t word) const { return word % banks(); }

    /** Access to one bank (fault injection, inspection). */
    TwoDimArray &bank(size_t b) { return *bankArray[b]; }
    const TwoDimArray &bank(size_t b) const { return *bankArray[b]; }

    /** Write @p value to flat word index @p word. */
    void writeWord(size_t word, const BitVector &value);

    /** Read flat word index @p word (recovery runs transparently). */
    AccessResult readWord(size_t word);

    /** Scrub every bank; true iff all end clean. */
    bool scrubAll();

    /** Combined storage overhead (identical across banks). */
    double storageOverhead() const { return bankArray[0]->storageOverhead(); }

    /** Aggregate statistics over all banks. */
    TwoDimStats aggregateStats() const;

  private:
    /** Map a flat word index to (bank-local row, slot). */
    std::pair<size_t, size_t> locate(size_t word) const;

    std::vector<std::unique_ptr<TwoDimArray>> bankArray;
};

} // namespace tdc

#endif // TDC_CORE_TWOD_CACHE_STORE_HH
