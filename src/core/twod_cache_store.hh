/**
 * @file
 * Whole-cache data store built from multiple 2D-protected banks —
 * the granularity at which the paper deploys the scheme ("32 parity
 * rows per cache bank").
 */

#ifndef TDC_CORE_TWOD_CACHE_STORE_HH
#define TDC_CORE_TWOD_CACHE_STORE_HH

#include <memory>
#include <vector>

#include "array/fault.hh"
#include "core/twod_array.hh"

namespace tdc
{

/** One fault event aimed at a specific bank of a cache store. */
struct BankFaultSpec
{
    size_t bank = 0;
    FaultModel fault;
};

/**
 * Merged outcome of a whole-store recovery batch. Per-bank reports are
 * kept in ascending bank order and the summary counters are reduced in
 * that same order, so the report is a pure function of the store state
 * regardless of how many workers ran the banks.
 */
struct CacheRecoveryReport
{
    /** Every swept bank was restored to a fully clean state. */
    bool success = true;

    /** Banks the batch swept, ascending; absent banks were not touched. */
    struct BankRecovery
    {
        size_t bank = 0;
        RecoveryReport report;
    };
    std::vector<BankRecovery> banks;

    /** Summed recovery-latency proxy (row reads across swept banks). */
    uint64_t rowReads = 0;
    /** Rows reconstructed via the vertical path, all banks. */
    uint64_t rowsReconstructed = 0;
    /** Columns repaired via the column-location path, all banks. */
    uint64_t columnsRepaired = 0;
};

/**
 * An array of independently protected TwoDimArray banks addressed by
 * a flat word index. Each bank has its own vertical parity rows, so a
 * multi-bit event in one bank is recovered locally while the others
 * keep serving accesses — and simultaneous events in different banks
 * are independently correctable. That per-bank independence is what
 * the batch sweeps (scrubAll / recoverAll / injectAndRecover) exploit:
 * banks are sharded over the parallelFor worker pool, and results are
 * reduced in bank order, so every batch outcome is bit-identical at
 * any TDC_THREADS setting.
 */
class TwoDimCacheStore
{
  public:
    /**
     * @param bank_config per-bank 2D configuration
     * @param banks number of banks
     * @throws std::invalid_argument when @p banks is zero
     */
    TwoDimCacheStore(const TwoDimConfig &bank_config, size_t banks);

    size_t banks() const { return bankArray.size(); }
    size_t wordsPerBank() const;
    size_t totalWords() const { return banks() * wordsPerBank(); }
    size_t dataBits() const;

    /** Bank that owns flat word index @p word. */
    size_t bankOf(size_t word) const { return word % banks(); }

    /** Access to one bank (fault injection, inspection). */
    TwoDimArray &bank(size_t b) { return *bankArray[b]; }
    const TwoDimArray &bank(size_t b) const { return *bankArray[b]; }

    /** Write @p value to flat word index @p word. */
    void writeWord(size_t word, const BitVector &value);

    /** Read flat word index @p word (recovery runs transparently). */
    AccessResult readWord(size_t word);

    /** Scrub every bank, bank-parallel; true iff all end clean. */
    bool scrubAll();

    /** Run the Figure 4(b) recovery sweep on every bank, bank-parallel. */
    CacheRecoveryReport recoverAll();

    /** Recovery sweep over the given banks only (ascending, deduped).
     *  @throws std::out_of_range on a bank index >= banks() */
    CacheRecoveryReport recoverBanks(std::vector<size_t> which);

    /**
     * Batch fault-injection campaign step: realize every event (event i
     * draws its randomness from the injection-domain stream
     * shardSeed(seed, kSeedDomainInjection, i), so campaigns that also
     * derive per-event streams from the same base seed — e.g. scrub
     * scheduling — can never collide with it; same-bank events
     * apply in spec order), then run the recovery sweep on exactly the
     * banks that were hit, bank-parallel. The outcome is a pure
     * function of (store contents, events, seed).
     * @throws std::out_of_range on an event bank index >= banks()
     *         (checked up front; the store is left untouched)
     */
    CacheRecoveryReport injectAndRecover(
        const std::vector<BankFaultSpec> &events, uint64_t seed);

    /** Combined storage overhead (identical across banks). */
    double storageOverhead() const;

    /**
     * Aggregate statistics over all banks. Stats are sharded per bank
     * (each bank mutates only its own counters, even during parallel
     * sweeps) and merged here in ascending bank order.
     */
    TwoDimStats aggregateStats() const;

  private:
    /** Map a flat word index to (bank-local row, slot). */
    std::pair<size_t, size_t> locate(size_t word) const;

    std::vector<std::unique_ptr<TwoDimArray>> bankArray;
};

} // namespace tdc

#endif // TDC_CORE_TWOD_CACHE_STORE_HH
