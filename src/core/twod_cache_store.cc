#include "core/twod_cache_store.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "common/parallel.hh"

namespace tdc
{

TwoDimCacheStore::TwoDimCacheStore(const TwoDimConfig &bank_config,
                                   size_t banks)
{
    if (banks == 0)
        throw std::invalid_argument(
            "TwoDimCacheStore requires at least one bank");
    bankArray.reserve(banks);
    for (size_t b = 0; b < banks; ++b)
        bankArray.push_back(std::make_unique<TwoDimArray>(bank_config));
}

size_t
TwoDimCacheStore::wordsPerBank() const
{
    return bankArray[0]->rows() * bankArray[0]->wordsPerRow();
}

size_t
TwoDimCacheStore::dataBits() const
{
    return bankArray[0]->dataBits();
}

double
TwoDimCacheStore::storageOverhead() const
{
    return bankArray[0]->storageOverhead();
}

std::pair<size_t, size_t>
TwoDimCacheStore::locate(size_t word) const
{
    assert(word < totalWords());
    const size_t local = word / banks();
    const size_t slots = bankArray[0]->wordsPerRow();
    return {local / slots, local % slots};
}

void
TwoDimCacheStore::writeWord(size_t word, const BitVector &value)
{
    auto [row, slot] = locate(word);
    bankArray[bankOf(word)]->writeWord(row, slot, value);
}

AccessResult
TwoDimCacheStore::readWord(size_t word)
{
    auto [row, slot] = locate(word);
    return bankArray[bankOf(word)]->readWord(row, slot);
}

bool
TwoDimCacheStore::scrubAll()
{
    // Banks are fully independent (own cells, parity, stats, scratch),
    // so the scrub shards directly over the pool; each iteration
    // writes only its own outcome slot.
    std::vector<char> clean(banks(), 0);
    parallelFor(banks(), [&](size_t b) {
        clean[b] = bankArray[b]->scrub() ? 1 : 0;
    });
    return std::all_of(clean.begin(), clean.end(),
                       [](char c) { return c != 0; });
}

CacheRecoveryReport
TwoDimCacheStore::recoverAll()
{
    std::vector<size_t> all(banks());
    for (size_t b = 0; b < banks(); ++b)
        all[b] = b;
    return recoverBanks(std::move(all));
}

CacheRecoveryReport
TwoDimCacheStore::recoverBanks(std::vector<size_t> which)
{
    std::sort(which.begin(), which.end());
    which.erase(std::unique(which.begin(), which.end()), which.end());
    if (!which.empty() && which.back() >= banks())
        throw std::out_of_range("TwoDimCacheStore::recoverBanks: bank " +
                                std::to_string(which.back()) +
                                " >= " + std::to_string(banks()));

    std::vector<RecoveryReport> reports(which.size());
    parallelFor(which.size(), [&](size_t i) {
        reports[i] = bankArray[which[i]]->recover();
    });

    // Serial reduction in ascending bank order: the merged report is
    // independent of worker scheduling.
    CacheRecoveryReport merged;
    for (size_t i = 0; i < which.size(); ++i) {
        RecoveryReport &rep = reports[i];
        merged.success = merged.success && rep.success;
        merged.rowReads += rep.rowReads;
        merged.rowsReconstructed += rep.rowsReconstructed.size();
        merged.columnsRepaired += rep.columnsRepaired.size();
        merged.banks.push_back({which[i], std::move(rep)});
    }
    return merged;
}

CacheRecoveryReport
TwoDimCacheStore::injectAndRecover(const std::vector<BankFaultSpec> &events,
                                   uint64_t seed)
{
    // Injection runs serially in spec order: events aimed at the same
    // bank must compose deterministically, and each event's randomness
    // comes from its own counter-based stream.
    // Validate every target up front so a bad spec leaves the store
    // untouched instead of half-injected.
    for (const BankFaultSpec &e : events) {
        if (e.bank >= banks())
            throw std::out_of_range(
                "TwoDimCacheStore::injectAndRecover: bank " +
                std::to_string(e.bank) + " >= " + std::to_string(banks()));
    }
    std::vector<size_t> hit;
    for (size_t i = 0; i < events.size(); ++i) {
        // Injection draws from its own seed domain: a campaign that
        // also counts scrub (or any other) events 0, 1, 2, ... off the
        // same base seed must never share streams with the injector.
        Rng rng(shardSeed(seed, kSeedDomainInjection, i));
        FaultInjector inj(rng);
        inj.inject(bankArray[events[i].bank]->cells(), events[i].fault);
        hit.push_back(events[i].bank);
    }
    return recoverBanks(std::move(hit));
}

TwoDimStats
TwoDimCacheStore::aggregateStats() const
{
    TwoDimStats total;
    for (const auto &bank : bankArray)
        total += bank->stats();
    return total;
}

} // namespace tdc
