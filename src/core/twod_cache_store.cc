#include "core/twod_cache_store.hh"

#include <cassert>

namespace tdc
{

TwoDimCacheStore::TwoDimCacheStore(const TwoDimConfig &bank_config,
                                   size_t banks)
{
    assert(banks > 0);
    bankArray.reserve(banks);
    for (size_t b = 0; b < banks; ++b)
        bankArray.push_back(std::make_unique<TwoDimArray>(bank_config));
}

size_t
TwoDimCacheStore::wordsPerBank() const
{
    return bankArray[0]->rows() * bankArray[0]->wordsPerRow();
}

size_t
TwoDimCacheStore::dataBits() const
{
    return bankArray[0]->dataBits();
}

std::pair<size_t, size_t>
TwoDimCacheStore::locate(size_t word) const
{
    assert(word < totalWords());
    const size_t local = word / banks();
    const size_t slots = bankArray[0]->wordsPerRow();
    return {local / slots, local % slots};
}

void
TwoDimCacheStore::writeWord(size_t word, const BitVector &value)
{
    auto [row, slot] = locate(word);
    bankArray[bankOf(word)]->writeWord(row, slot, value);
}

AccessResult
TwoDimCacheStore::readWord(size_t word)
{
    auto [row, slot] = locate(word);
    return bankArray[bankOf(word)]->readWord(row, slot);
}

bool
TwoDimCacheStore::scrubAll()
{
    bool ok = true;
    for (auto &bank : bankArray)
        ok &= bank->scrub();
    return ok;
}

TwoDimStats
TwoDimCacheStore::aggregateStats() const
{
    TwoDimStats total;
    for (const auto &bank : bankArray) {
        const TwoDimStats &s = bank->stats();
        total.reads += s.reads;
        total.writes += s.writes;
        total.readBeforeWrites += s.readBeforeWrites;
        total.inlineCorrections += s.inlineCorrections;
        total.recoveries += s.recoveries;
        total.recoveryFailures += s.recoveryFailures;
    }
    return total;
}

} // namespace tdc
