#include "core/vertical_parity.hh"

#include <cassert>

namespace tdc
{

VerticalParity::VerticalParity(size_t data_rows, size_t row_bits,
                               size_t groups)
    : coveredRows(data_rows), parity(groups, row_bits)
{
    assert(groups > 0);
    assert(data_rows >= groups);
}

void
VerticalParity::applyDelta(size_t r, const BitVector &delta)
{
    assert(delta.size() == rowBits());
    const size_t g = groupOf(r);
    if (!parity.rowHasStuck(g)) {
        // Hot path: fold the delta into the stored parity row in
        // place — no row-sized temporary, no separate read.
        parity.xorRow(g, delta);
    } else {
        // A stuck cell in the parity row: preserve the historical
        // semantics (the overlaid value is what gets XORed and
        // re-stored).
        BitVector row = parity.readRow(g);
        row ^= delta;
        parity.writeRow(g, row);
    }
    ++updates;
}

void
VerticalParity::writeGroup(size_t g, const BitVector &value)
{
    assert(g < groups());
    parity.writeRow(g, value);
}

} // namespace tdc
