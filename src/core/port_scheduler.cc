#include "core/port_scheduler.hh"

#include <cassert>

namespace tdc
{

PortScheduler::PortScheduler(unsigned ports_, unsigned steal_window)
    : ports(ports_), stealWindow(steal_window)
{
    assert(ports > 0);
}

void
PortScheduler::advanceTo(uint64_t cycle)
{
    assert(cycle >= now);
    if (cycle == now)
        return;

    // Account idle slots of every fully elapsed cycle for stealing.
    // The horizon cycle may be partially used; cycles between now and
    // the horizon are fully booked (horizon invariant).
    for (uint64_t c = now; c < cycle; ++c) {
        unsigned used = 0;
        if (c < horizonCycle)
            used = ports;
        else if (c == horizonCycle)
            used = horizonUsed;
        const unsigned idle = ports - used;
        if (stealWindow > 0) {
            idleHistory.push_back(idle);
            idleBank += idle;
            while (idleHistory.size() > stealWindow) {
                idleBank -= idleHistory.front();
                idleHistory.pop_front();
            }
        }
    }

    now = cycle;
    if (horizonCycle < now) {
        horizonCycle = now;
        horizonUsed = 0;
    }
}

unsigned
PortScheduler::issueDemand()
{
    ++demandCount;
    if (horizonUsed >= ports) {
        ++horizonCycle;
        horizonUsed = 0;
    }
    ++horizonUsed;
    const unsigned delay = unsigned(horizonCycle - now);
    delaySum += delay;
    return delay;
}

unsigned
PortScheduler::issueStolenRead()
{
    if (stealWindow > 0 && idleBank > 0) {
        // Absorbed into an idle slot observed within the window: the
        // read issued early from the store queue and costs nothing
        // now.
        --idleBank;
        assert(!idleHistory.empty());
        // Consume the oldest recorded idle slot.
        for (auto &slot : idleHistory) {
            if (slot > 0) {
                --slot;
                break;
            }
        }
        ++absorbedCount;
        return 0;
    }
    ++chargedCount;
    issueDemand();
    --demandCount; // counted separately as a charged stolen read
    return 1;
}

double
PortScheduler::stealEfficiency() const
{
    const uint64_t total = absorbedCount + chargedCount;
    return total == 0 ? 0.0 : double(absorbedCount) / double(total);
}

} // namespace tdc
