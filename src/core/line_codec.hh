/**
 * @file
 * Batched whole-line codec: encode/check/correct every interleaved
 * word of a physical row in one call.
 */

#ifndef TDC_CORE_LINE_CODEC_HH
#define TDC_CORE_LINE_CODEC_HH

#include <vector>

#include "array/interleave.hh"
#include "common/bit_vector.hh"
#include "ecc/code.hh"

namespace tdc
{

/**
 * Whole-row view of a per-word code under a bit-interleave map: a
 * physical row holds map.degree() codewords, bit-interleaved across
 * the columns. The codec batches the three row-granular operations
 * the array controllers perform — "is every word clean?", "encode all
 * words", "correct all correctable words in place" — behind one call
 * each, so the slot loop (and its per-slot extract) lives here
 * instead of being re-rolled at every call site.
 *
 * The payoff is the fused clean check: for an interleaved-parity
 * (EDCn) horizontal code whose period p = degree * n divides 64 and
 * whose data width is a multiple of n, the concatenation of all
 * slots' syndromes is exactly the whole row XOR-folded down to p
 * bits. One pass over the row words (vectorized on the AVX2 dispatch
 * tier) replaces degree extract+syndrome rounds. The fused path is
 * engaged on the accelerated dispatch tiers only; the scalar tier
 * keeps the per-slot reference loop (identical verdicts, so outputs
 * never depend on TDC_SIMD).
 *
 * Holds references to the code and map; both must outlive the codec.
 */
class LineCodec
{
  public:
    LineCodec(const Code &code, const InterleaveMap &map);

    /** True iff every slot of @p row_bits has a zero syndrome. */
    bool lineClean(const BitVector &row_bits) const;

    /**
     * Encode @p words (one data word per slot, words.size() ==
     * degree) and deposit the codewords into @p row_bits, which must
     * already be row-sized.
     */
    void encodeLine(const std::vector<BitVector> &words,
                    BitVector &row_bits) const;

    /**
     * Decode every slot of @p row_bits in place: correctable slots
     * are repaired (re-encoded and deposited), clean slots left
     * untouched. Returns false as soon as a slot is uncorrectable
     * (the row is then partially repaired, matching the historical
     * slot-loop semantics). @p changed reports whether any bit of the
     * row was rewritten.
     */
    bool correctLine(BitVector &row_bits, bool &changed) const;

    /** Whether lineClean uses the fused whole-row EDC fold. */
    bool fusedCheck() const { return fusedFoldBits != 0; }

  private:
    const Code &code;
    const InterleaveMap &map;

    /**
     * Fold period p = degree * checkBits when the fused EDC clean
     * check applies (interleaved-parity code, n | k, p | 64), else 0.
     */
    size_t fusedFoldBits;

    /** Recycled codeword scratch: row operations allocate nothing in
     *  steady state (same non-reentrancy trade as TwoDimArray). */
    mutable BitVector cwScratch;
};

} // namespace tdc

#endif // TDC_CORE_LINE_CODEC_HH
