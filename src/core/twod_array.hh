/**
 * @file
 * The paper's primary contribution: a memory array protected by
 * two-dimensional error coding, with the multi-bit recovery process
 * of Figure 4(b).
 */

#ifndef TDC_CORE_TWOD_ARRAY_HH
#define TDC_CORE_TWOD_ARRAY_HH

#include <cstdint>
#include <vector>

#include "array/interleave.hh"
#include "array/memory_array.hh"
#include "array/protected_array.hh"
#include "core/line_codec.hh"
#include "core/twod_config.hh"
#include "core/vertical_parity.hh"
#include "ecc/code.hh"
#include "ecc/interleaved_parity.hh"

namespace tdc
{

/** Outcome of a 2D recovery attempt (the BIST/BISR-style sweep). */
struct RecoveryReport
{
    /** Whether the array was restored to a fully clean state. */
    bool success = false;

    /** Rows reconstructed via the vertical (row XOR) path. */
    std::vector<size_t> rowsReconstructed;

    /** Columns repaired via the column-location path. */
    std::vector<size_t> columnsRepaired;

    /**
     * Number of array row reads the sweep issued. The paper likens
     * recovery latency to a BIST march over the bank; cycles are
     * proportional to this count.
     */
    uint64_t rowReads = 0;

    /** Whether the column path had to run. */
    bool usedColumnPath = false;
};

/** Aggregate statistics of a TwoDimArray instance. */
struct TwoDimStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t readBeforeWrites = 0; ///< extra reads caused by writes
    uint64_t inlineCorrections = 0; ///< horizontal (SECDED) fixes
    uint64_t recoveries = 0;
    uint64_t recoveryFailures = 0;

    /**
     * readWord accesses served by borrowing the stored row as a span
     * (no copy) vs. those that had to materialize a copy because the
     * row carries a stuck-at overlay. On a fault-free bank every read
     * is a borrow: rowCopies == 0 is the allocation-free fast-path
     * invariant the tests pin down.
     */
    uint64_t rowBorrows = 0;
    uint64_t rowCopies = 0;

    /** Merge another shard (per-bank stats are summed field-wise, in
     *  bank order, so aggregates are independent of who ran where). */
    TwoDimStats &operator+=(const TwoDimStats &o)
    {
        reads += o.reads;
        writes += o.writes;
        readBeforeWrites += o.readBeforeWrites;
        inlineCorrections += o.inlineCorrections;
        recoveries += o.recoveries;
        recoveryFailures += o.recoveryFailures;
        rowBorrows += o.rowBorrows;
        rowCopies += o.rowCopies;
        return *this;
    }

    bool operator==(const TwoDimStats &) const = default;
};

/**
 * 2D-protected array. Horizontal dimension: per-word code (EDCn or
 * SECDED) with physical bit interleaving, exactly as ProtectedArray.
 * Vertical dimension: V interleaved parity rows, updated incrementally
 * on every write via read-before-write.
 *
 * The guaranteed coverage (Section 3): any clustered error whose
 * footprint spans at most clusterHeightCoverage() rows is correctable
 * provided the horizontal code detects the per-word corruption (true
 * for any footprint at most clusterWidthCoverage() columns wide, and
 * for any single-bit-per-word corruption regardless of width). Errors
 * taller than V rows are additionally correctable when the vertical
 * syndrome can localize the faulty columns (tall-narrow bursts).
 */
class TwoDimArray
{
  public:
    explicit TwoDimArray(const TwoDimConfig &config);

    const TwoDimConfig &config() const { return cfg; }
    size_t rows() const { return data.rows(); }
    size_t wordsPerRow() const { return map.degree(); }
    size_t dataBits() const { return horizontal->dataBits(); }

    /** Raw cell arrays, for fault injection. */
    MemoryArray &cells() { return data; }
    VerticalParity &vertical() { return parity; }
    const VerticalParity &vertical() const { return parity; }

    /** Interleave geometry (physical column <-> word/bit mapping). */
    const InterleaveMap &interleave() const { return map; }

    /**
     * Write @p value into word @p slot of row @p row. Performs the
     * read-before-write and the incremental vertical parity update.
     */
    void writeWord(size_t row, size_t slot, const BitVector &value);

    /**
     * Read word @p slot of row @p row. Horizontal-clean reads return
     * immediately (the error-free fast path). A horizontal correction
     * (SECDED single-bit) is applied in line, *including* the vertical
     * parity maintenance for the flipped bits. A horizontal detection
     * triggers the full 2D recovery sweep and then retries once.
     */
    AccessResult readWord(size_t row, size_t slot);

    /**
     * Run the Figure 4(b) recovery process over the whole bank:
     * reconstruct faulty rows from their vertical parity group; if a
     * group holds multiple faulty rows, fall back to the column-
     * location path. Clears transient faults it repairs; stuck-at
     * cells will re-corrupt on the next write (as in hardware).
     */
    RecoveryReport recover();

    /**
     * Background scrub pass: decode every word, fixing what the
     * horizontal code corrects and invoking recovery if needed.
     * Returns true iff the bank ends clean.
     */
    bool scrub();

    /** Verify every word decodes clean (no repair side effects). */
    bool verifyClean() const;

    /** Rebuild every vertical parity row from the data (BIST init). */
    void rebuildParity();

    /** Check all parity rows against the data (no repair). */
    bool verifyParity() const;

    /** Storage overhead of both dimensions combined. */
    double storageOverhead() const;

    const TwoDimStats &stats() const { return stat; }
    void resetStats() { stat = TwoDimStats{}; }

    /** Report of the most recent recovery (empty if none yet). */
    const RecoveryReport &lastRecovery() const { return lastReport; }

  private:
    /** Decode every slot of @p row_bits; true iff all slots clean or
     *  correctable. @p any_detect set if any slot is uncorrectable. */
    bool rowHealthy(const BitVector &row_bits, bool &any_detect) const;

    /** Row-path reconstruction of @p row from its parity group.
     *  Returns false if another faulty row shares the group. */
    bool reconstructRow(size_t row, RecoveryReport &report);

    /** Column-location path for errors spanning more than V rows. */
    bool recoverViaColumns(RecoveryReport &report);

    /** Horizontal-correct a whole row in place (SECDED horizontal);
     *  maintains vertical parity. Returns false if any slot is
     *  uncorrectable. */
    bool inlineCorrectRow(size_t row);

    TwoDimConfig cfg;
    CodePtr horizontal;
    InterleaveMap map;
    /** Batched row-granular codec over (horizontal, map); the sweep
     *  paths (rowHealthy / verifyClean / inlineCorrectRow) go through
     *  it so clean rows cost one fused check instead of a slot loop. */
    LineCodec line;
    MemoryArray data;
    VerticalParity parity;
    TwoDimStats stat;
    RecoveryReport lastReport;

    /**
     * Reusable scratch buffers for the access hot paths (readWord /
     * writeWord): row-sized and codeword-sized temporaries are built
     * once and recycled, so steady-state accesses allocate nothing.
     * Accesses are consequently not reentrant per instance — same as
     * the underlying stats, and matching the single-ported banks the
     * model represents.
     */
    BitVector rowScratch;
    BitVector deltaScratch;
    BitVector cwScratch;
};

} // namespace tdc

#endif // TDC_CORE_TWOD_ARRAY_HH
