#include "core/twod_config.hh"

#include "ecc/code.hh"

namespace tdc
{

TwoDimConfig
TwoDimConfig::l1Default()
{
    TwoDimConfig cfg;
    cfg.horizontalKind = CodeKind::kEdc8;
    cfg.wordBits = 64;
    cfg.interleaveDegree = 4;
    cfg.verticalParityRows = 32;
    cfg.dataRows = 256;
    return cfg;
}

TwoDimConfig
TwoDimConfig::l2Default()
{
    TwoDimConfig cfg;
    cfg.horizontalKind = CodeKind::kEdc16;
    cfg.wordBits = 256;
    cfg.interleaveDegree = 2;
    cfg.verticalParityRows = 32;
    cfg.dataRows = 256;
    return cfg;
}

TwoDimConfig
TwoDimConfig::secdedHorizontal(size_t word_bits, size_t degree)
{
    TwoDimConfig cfg;
    cfg.horizontalKind = CodeKind::kSecDed;
    cfg.wordBits = word_bits;
    cfg.interleaveDegree = degree;
    cfg.verticalParityRows = 32;
    cfg.dataRows = 256;
    return cfg;
}

size_t
TwoDimConfig::clusterWidthCoverage() const
{
    const CodePtr code = makeCode(horizontalKind, wordBits);
    return interleaveDegree * code->burstDetectCapability();
}

std::string
TwoDimConfig::describe() const
{
    return codeKindName(horizontalKind) + "+Intv" +
           std::to_string(interleaveDegree) + ", EDC" +
           std::to_string(verticalParityRows) + " vertical (" +
           std::to_string(dataRows) + " data rows, " +
           std::to_string(wordBits) + "b words)";
}

} // namespace tdc
