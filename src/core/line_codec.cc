#include "core/line_codec.hh"

#include <cassert>

#include "common/cpu_features.hh"
#include "ecc/interleaved_parity.hh"

namespace tdc
{

LineCodec::LineCodec(const Code &code, const InterleaveMap &map)
    : code(code), map(map), fusedFoldBits(0)
{
    assert(map.rowBits() == code.codewordBits() * map.degree());
    // Fused clean check: with a degree-d interleave, codeword bit b of
    // slot s sits at physical column b*d + s, so column c mod (d*n)
    // equals (b mod n)*d + s whenever d*n divides 64. When the data
    // width is also a multiple of n, check bit j lands in parity
    // class j, and the whole-row fold down to p = d*n bits is the
    // concatenation of every slot's n-bit syndrome: zero iff the
    // entire line is clean.
    const auto *edc = dynamic_cast<const InterleavedParityCode *>(&code);
    if (edc != nullptr) {
        const size_t n = code.checkBits();
        const size_t p = map.degree() * n;
        if (code.dataBits() % n == 0 && p <= 64 && 64 % p == 0)
            fusedFoldBits = p;
    }
}

bool
LineCodec::lineClean(const BitVector &row_bits) const
{
    assert(row_bits.size() == map.rowBits());
    if (fusedFoldBits != 0 && simdBmi2Active()) {
        // One pass over the packed row words. Bits past the row size
        // are zero (BitVector invariant), so partial top words fold
        // harmlessly; 64 is a multiple of the period, so in-word bit
        // position mod p equals column mod p.
        const uint64_t *words = row_bits.wordData();
        const size_t nwords = row_bits.wordCount();
        uint64_t acc;
        if (nwords >= 4 && simdAvx2Active()) {
            acc = simd::xorFoldAvx2(words, nwords);
        } else {
            acc = 0;
            for (size_t w = 0; w < nwords; ++w)
                acc ^= words[w];
        }
        for (size_t width = 64; width > fusedFoldBits; width /= 2)
            acc ^= acc >> (width / 2);
        if (fusedFoldBits < 64)
            acc &= (uint64_t(1) << fusedFoldBits) - 1;
        return acc == 0;
    }

    for (size_t slot = 0; slot < map.degree(); ++slot) {
        map.extractWordInto(row_bits, slot, cwScratch);
        if (!code.syndromeClean(cwScratch))
            return false;
    }
    return true;
}

void
LineCodec::encodeLine(const std::vector<BitVector> &words,
                      BitVector &row_bits) const
{
    assert(words.size() == map.degree());
    assert(row_bits.size() == map.rowBits());
    for (size_t slot = 0; slot < map.degree(); ++slot)
        map.depositWord(row_bits, slot, code.encode(words[slot]));
}

bool
LineCodec::correctLine(BitVector &row_bits, bool &changed) const
{
    assert(row_bits.size() == map.rowBits());
    changed = false;
    for (size_t slot = 0; slot < map.degree(); ++slot) {
        map.extractWordInto(row_bits, slot, cwScratch);
        if (code.syndromeClean(cwScratch))
            continue;
        DecodeResult d = code.decode(cwScratch);
        if (d.uncorrectable())
            return false;
        if (d.corrected()) {
            map.depositWord(row_bits, slot, code.encode(d.data));
            changed = true;
        }
    }
    return true;
}

} // namespace tdc
