/**
 * @file
 * Figure 6: cache access breakdown per 100 processor cycles — thin wrapper over the tdc_run
 * driver ("tdc_run --figure fig6"); table output is byte-identical to
 * the historical standalone bench.
 */

#include "driver/tdc_run.hh"

int
main()
{
    return tdc::tdcRunMain({"--figure", "fig6"});
}
