/**
 * @file
 * Figure 6 — cache access breakdown per 100 processor cycles for the
 * L1 data caches (per core) and the shared L2 (aggregate), on both
 * machines, with full 2D protection enabled so the "extra read for 2D
 * coding" component is visible.
 */

#include <cstdio>

#include "common/table.hh"
#include "cpu/cmp_simulator.hh"

using namespace tdc;

namespace
{

constexpr uint64_t kCycles = 150000;
constexpr uint64_t kSeed = 42;

void
l1Table(const CmpConfig &m, const char *title)
{
    std::printf("--- %s: L1 data cache accesses / 100 cycles (per core)"
                " ---\n\n", title);
    Table t({"Workload", "Read:Data", "Write", "Fill/Evict",
             "Extra read (2D)", "Total", "Extra %"});
    for (const WorkloadProfile &w : standardWorkloads()) {
        CmpSimulator sim(m, w, ProtectionConfig::full(true), kSeed);
        const CmpSimResult r = sim.run(kCycles);
        const double reads = r.per100(r.l1ReadsData) / m.cores;
        const double writes = r.per100(r.l1Writes) / m.cores;
        const double fills = r.per100(r.l1FillEvict) / m.cores;
        const double extra = r.per100(r.l1ExtraReads) / m.cores;
        const double total = reads + writes + fills + extra;
        t.addRow({w.name, Table::num(reads, 1), Table::num(writes, 1),
                  Table::num(fills, 1), Table::num(extra, 1),
                  Table::num(total, 1), Table::pct(extra / total)});
    }
    t.print();
    std::printf("\n");
}

void
l2Table(const CmpConfig &m, const char *title)
{
    std::printf("--- %s: L2 cache accesses / 100 cycles (all cores) "
                "---\n\n", title);
    Table t({"Workload", "Read:Inst", "Read:Data", "Write", "Fill/Evict",
             "Extra read (2D)", "Total"});
    for (const WorkloadProfile &w : standardWorkloads()) {
        CmpSimulator sim(m, w, ProtectionConfig::full(true), kSeed);
        const CmpSimResult r = sim.run(kCycles);
        const double ri = r.per100(r.l2ReadsInst);
        const double rd = r.per100(r.l2ReadsData);
        const double wr = r.per100(r.l2Writes);
        const double fe = r.per100(r.l2FillEvict);
        const double ex = r.per100(r.l2ExtraReads);
        t.addRow({w.name, Table::num(ri, 1), Table::num(rd, 1),
                  Table::num(wr, 1), Table::num(fe, 1), Table::num(ex, 1),
                  Table::num(ri + rd + wr + fe + ex, 1)});
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Figure 6: cache access breakdown per 100 CPU cycles "
                "===\n\n");
    const CmpConfig fat = CmpConfig::fat();
    const CmpConfig lean = CmpConfig::lean();
    l1Table(fat, "Figure 6(a) fat baseline");
    l1Table(lean, "Figure 6(b) lean baseline");
    l2Table(fat, "Figure 6(c) fat baseline");
    l2Table(lean, "Figure 6(d) lean baseline");
    std::printf(
        "Paper shape: writes (the source of read-before-write traffic) "
        "are a small\nfraction of accesses; 2D coding adds roughly 20%% "
        "extra reads; the fat CMP has\nhigher per-core L1 bandwidth, the "
        "lean CMP higher aggregate L2 bandwidth.\n");
    return 0;
}
