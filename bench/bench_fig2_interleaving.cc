/**
 * @file
 * Figure 2(b)/(c) — dynamic read energy vs. physical bit-interleaving
 * degree, for the 64kB L1 ((72,64) SECDED words) and the 4MB L2
 * ((266,256) SECDED words), under each optimizer objective.
 *
 * Energies are normalized to the 1:1 (no interleaving) delay-optimal
 * design point of the same cache, matching the paper's presentation.
 * Each panel is a declarative grid executed by the unified campaign
 * driver (reliability/figure_campaigns.hh).
 */

#include <cstdio>

#include "reliability/figure_campaigns.hh"

using namespace tdc;

int
main()
{
    std::printf("=== Figure 2: normalized energy per read vs interleave "
                "degree ===\n\n");
    figure2EnergyCampaign(
        "--- Figure 2(b): 64kB cache, (72,64) SECDED words ---",
        64 * 1024, 64, 1)
        .print();
    std::printf("\n");
    figure2EnergyCampaign(
        "--- Figure 2(c): 4MB cache, (266,256) SECDED words, 8 banks ---",
        4 * 1024 * 1024, 256, 8)
        .print();
    std::printf("\n");
    std::printf("Paper shape: energy rises with interleave degree under "
                "every objective; the rise\nis steeper for the 4MB cache "
                "(wider words multiply the bitline swing cost).\n");
    return 0;
}
