/**
 * @file
 * Figure 2(b)/(c) — dynamic read energy vs. physical bit-interleaving
 * degree, for the 64kB L1 ((72,64) SECDED words) and the 4MB L2
 * ((266,256) SECDED words), under each optimizer objective.
 *
 * Energies are normalized to the 1:1 (no interleaving) delay-optimal
 * design point of the same cache, matching the paper's presentation.
 */

#include <cstdio>

#include "common/table.hh"
#include "ecc/cost_model.hh"
#include "vlsi/sram_model.hh"

using namespace tdc;

namespace
{

void
sweep(const char *title, size_t capacity_bytes, size_t word_bits,
      size_t banks)
{
    const size_t check = checkBitsOf(CodeKind::kSecDed, word_bits);
    const SramObjective objectives[] = {
        SramObjective::kDelay,
        SramObjective::kDelayArea,
        SramObjective::kBalanced,
        SramObjective::kPower,
    };

    const double base = cacheArrayMetrics(capacity_bytes, word_bits,
                                          check, 1, banks,
                                          SramObjective::kDelay)
                            .readEnergy;

    std::printf("%s\n\n", title);
    Table t({"Degree", "Delay-opt", "Delay+Area-opt", "Balanced",
             "Power-opt"});
    for (size_t degree = 1; degree <= 16; degree *= 2) {
        std::vector<std::string> row;
        row.push_back(std::to_string(degree) + ":1");
        for (SramObjective obj : objectives) {
            const SramMetrics m = cacheArrayMetrics(
                capacity_bytes, word_bits, check, degree, banks, obj);
            row.push_back(Table::num(m.readEnergy / base, 2));
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Figure 2: normalized energy per read vs interleave "
                "degree ===\n\n");
    sweep("--- Figure 2(b): 64kB cache, (72,64) SECDED words ---",
          64 * 1024, 64, 1);
    sweep("--- Figure 2(c): 4MB cache, (266,256) SECDED words, 8 banks ---",
          4 * 1024 * 1024, 256, 8);
    std::printf("Paper shape: energy rises with interleave degree under "
                "every objective; the rise\nis steeper for the 4MB cache "
                "(wider words multiply the bitline swing cost).\n");
    return 0;
}
