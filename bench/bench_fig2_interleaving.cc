/**
 * @file
 * Figure 2(b)/(c): read energy vs physical bit-interleaving degree — thin wrapper over the tdc_run
 * driver ("tdc_run --figure fig2"); table output is byte-identical to
 * the historical standalone bench.
 */

#include "driver/tdc_run.hh"

int
main()
{
    return tdc::tdcRunMain({"--figure", "fig2"});
}
