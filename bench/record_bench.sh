#!/usr/bin/env sh
# Record a google-benchmark trajectory entry (docs/BENCHMARKS.md).
#
# Runs a google-benchmark harness in JSON mode and appends one entry
# (commit, label, per-benchmark real_time ns) to a BENCH_*.json file
# at the repo root. Usage, from the repo root, after building:
#
#   bench/record_bench.sh [--bench NAME] [--out FILE] [--filter REGEX] [label]
#
# --bench  harness binary under $BUILD_DIR/bench to run (default:
#          bench_micro_codec). BENCH_0006_service.json is recorded
#          with --bench bench_service.
# --out    trajectory file to append to (default:
#          BENCH_0002_micro_codec.json)
# --filter google-benchmark regex selecting which benchmarks to run
#          and record (default: all). BENCH_0003_bch_decode.json is
#          recorded with --filter 'BM_DecodeDirty64|BM_RecoverySweep'.
# --compare-simd
#          run the same harness+filter twice in one invocation — first
#          with TDC_SIMD=scalar forced, then with the runtime-dispatched
#          backend — and append BOTH entries (labels suffixed
#          "(scalar)" / "(dispatched)") to the same trajectory file, so
#          a before/after pair always shares one build and one commit.
#          BENCH_0007_simd_codec.json is recorded with
#            bench/record_bench.sh --bench bench_simd_codec \
#              --out BENCH_0007_simd_codec.json --compare-simd [label]
#
# The build directory can be overridden with BUILD_DIR (default: build).
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${BUILD_DIR:-"$repo_root/build"}
bench_name="bench_micro_codec"
out_file="$repo_root/BENCH_0002_micro_codec.json"
filter=""

while [ $# -gt 0 ]; do
    case "$1" in
      --bench)
        bench_name=${2:?"--bench requires a harness name argument"}
        shift 2 ;;
      --out)
        out_arg=${2:?"--out requires a file argument"}
        # Absolute paths pass through; relative ones root at the repo.
        case "$out_arg" in
          /*) out_file="$out_arg" ;;
          *)  out_file="$repo_root/$out_arg" ;;
        esac
        shift 2 ;;
      --filter) filter=${2:?"--filter requires a regex argument"}; shift 2 ;;
      --compare-simd) compare_simd=1; shift ;;
      *) break ;;
    esac
done
label=${1:-"$(date +%Y-%m-%d) run"}
bench_bin="$build_dir/bench/$bench_name"

if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not built (cmake --build $build_dir)" >&2
    exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
commit=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)

# run_bench SIMD_MODE: run the harness into $raw. SIMD_MODE is a
# TDC_SIMD value to force, or "" to leave dispatch to the runtime.
run_bench() {
    if [ -n "$1" ]; then
        export TDC_SIMD="$1"
    else
        unset TDC_SIMD || true
    fi
    if [ -n "$filter" ]; then
        "$bench_bin" --benchmark_filter="$filter" \
                     --benchmark_format=json >"$raw"
    else
        "$bench_bin" --benchmark_format=json >"$raw"
    fi
}

append_entry() {
    python3 - "$raw" "$out_file" "$commit" "$1" "$bench_name" <<'EOF'
import json
import sys

raw_path, out_path, commit, label, bench_name = sys.argv[1:6]
with open(raw_path) as f:
    run = json.load(f)

to_ns = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}
results = {}
for b in run["benchmarks"]:
    if b.get("error_occurred"):
        continue  # e.g. BM_DecodeCorrect64 on detection-only codes
    name = b["name"]
    if b.get("label"):
        name += " [" + b["label"] + "]"
    results[name] = round(b["real_time"] * to_ns[b.get("time_unit", "ns")], 1)

entry = {
    "commit": commit,
    "label": label,
    "time_unit": "ns",
    "results": results,
}

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {"benchmark": bench_name, "entries": []}

doc["entries"].append(entry)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"appended entry '{label}' ({commit}) with {len(results)} results "
      f"to {out_path}")
EOF
}

if [ "${compare_simd:-0}" = 1 ]; then
    run_bench scalar
    append_entry "$label (scalar)"
    run_bench ""
    append_entry "$label (dispatched)"
else
    run_bench "${TDC_SIMD:-}"
    append_entry "$label"
fi
