#!/usr/bin/env sh
# Record a google-benchmark trajectory entry (docs/BENCHMARKS.md).
#
# Runs a google-benchmark harness in JSON mode and appends one entry
# (commit, label, per-benchmark real_time ns) to a BENCH_*.json file
# at the repo root. Usage, from the repo root, after building:
#
#   bench/record_bench.sh [--bench NAME] [--out FILE] [--filter REGEX]
#                         [--repeat N] [label]
#
# --bench  harness binary under $BUILD_DIR/bench to run (default:
#          bench_micro_codec). BENCH_0006_service.json is recorded
#          with --bench bench_service.
# --out    trajectory file to append to (default:
#          BENCH_0002_micro_codec.json)
# --filter google-benchmark regex selecting which benchmarks to run
#          and record (default: all). BENCH_0003_bch_decode.json is
#          recorded with --filter 'BM_DecodeDirty64|BM_RecoverySweep'.
# --repeat N
#          run the harness N times and record the per-benchmark MINIMUM
#          real_time across runs (default: 1). The minimum is the
#          standard noise filter for wall-clock trajectories on shared
#          machines. BENCH_0008_result_cache.json is recorded with
#            bench/record_bench.sh --bench bench_result_cache \
#              --out BENCH_0008_result_cache.json --repeat 3 [label]
# --compare-simd
#          run the same harness+filter twice in one invocation — first
#          with TDC_SIMD=scalar forced, then with the runtime-dispatched
#          backend — and append BOTH entries (labels suffixed
#          "(scalar)" / "(dispatched)") to the same trajectory file, so
#          a before/after pair always shares one build and one commit.
#          BENCH_0007_simd_codec.json is recorded with
#            bench/record_bench.sh --bench bench_simd_codec \
#              --out BENCH_0007_simd_codec.json --compare-simd [label]
#
# The build directory can be overridden with BUILD_DIR (default: build).
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${BUILD_DIR:-"$repo_root/build"}
bench_name="bench_micro_codec"
out_file="$repo_root/BENCH_0002_micro_codec.json"
filter=""

while [ $# -gt 0 ]; do
    case "$1" in
      --bench)
        bench_name=${2:?"--bench requires a harness name argument"}
        shift 2 ;;
      --out)
        out_arg=${2:?"--out requires a file argument"}
        # Absolute paths pass through; relative ones root at the repo.
        case "$out_arg" in
          /*) out_file="$out_arg" ;;
          *)  out_file="$repo_root/$out_arg" ;;
        esac
        shift 2 ;;
      --filter) filter=${2:?"--filter requires a regex argument"}; shift 2 ;;
      --repeat)
        repeat=${2:?"--repeat requires a count argument"}
        case "$repeat" in
          ''|*[!0-9]*|0) echo "error: --repeat expects a positive integer, got \"$repeat\"" >&2; exit 1 ;;
        esac
        shift 2 ;;
      --compare-simd) compare_simd=1; shift ;;
      *) break ;;
    esac
done
label=${1:-"$(date +%Y-%m-%d) run"}
bench_bin="$build_dir/bench/$bench_name"

if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not built (cmake --build $build_dir)" >&2
    exit 1
fi

raw_dir=$(mktemp -d)
trap 'rm -rf "$raw_dir"' EXIT
commit=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)
repeat=${repeat:-1}

# run_bench SIMD_MODE: run the harness $repeat times into
# $raw_dir/run.N. SIMD_MODE is a TDC_SIMD value to force, or "" to
# leave dispatch to the runtime.
run_bench() {
    if [ -n "$1" ]; then
        export TDC_SIMD="$1"
    else
        unset TDC_SIMD || true
    fi
    rm -f "$raw_dir"/run.*
    i=1
    while [ "$i" -le "$repeat" ]; do
        if [ -n "$filter" ]; then
            "$bench_bin" --benchmark_filter="$filter" \
                         --benchmark_format=json >"$raw_dir/run.$i"
        else
            "$bench_bin" --benchmark_format=json >"$raw_dir/run.$i"
        fi
        i=$((i + 1))
    done
}

append_entry() {
    python3 - "$raw_dir" "$out_file" "$commit" "$1" "$bench_name" <<'EOF'
import glob
import json
import os
import sys

raw_dir, out_path, commit, label, bench_name = sys.argv[1:6]

to_ns = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}
results = {}
runs = sorted(glob.glob(os.path.join(raw_dir, "run.*")))
for raw_path in runs:
    with open(raw_path) as f:
        run = json.load(f)
    for b in run["benchmarks"]:
        if b.get("error_occurred"):
            continue  # e.g. BM_DecodeCorrect64 on detection-only codes
        name = b["name"]
        if b.get("label"):
            name += " [" + b["label"] + "]"
        ns = round(b["real_time"] * to_ns[b.get("time_unit", "ns")], 1)
        # min across --repeat runs: the standard wall-clock noise filter
        results[name] = min(results.get(name, ns), ns)

entry = {
    "commit": commit,
    "label": label,
    "time_unit": "ns",
    "results": results,
}

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {"benchmark": bench_name, "entries": []}

doc["entries"].append(entry)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"appended entry '{label}' ({commit}) with {len(results)} results "
      f"to {out_path}")
EOF
}

if [ "${compare_simd:-0}" = 1 ]; then
    run_bench scalar
    append_entry "$label (scalar)"
    run_bench ""
    append_entry "$label (dispatched)"
else
    run_bench "${TDC_SIMD:-}"
    append_entry "$label"
fi
