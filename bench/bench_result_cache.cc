/**
 * @file
 * Campaign result-cache benchmarks (BENCH_0008_result_cache.json):
 * cold vs warm figure and custom-grid runs through the tdc_run driver.
 *
 * "Cold" clears the in-memory tier every iteration and runs with no
 * disk tier — the pre-cache baseline. "Warm" measures replay from the
 * in-memory tier; "WarmDisk" drops the memory tier every iteration and
 * replays from a populated --cache-dir, the fresh-process case. The
 * cold/warm ratio is the headline speedup the cache buys a repeated
 * figure run (acceptance floor: >= 10x on fig7).
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "driver/tdc_run.hh"
#include "reliability/result_cache.hh"

namespace
{

namespace fs = std::filesystem;

std::string
run(const std::vector<std::string> &args)
{
    std::string out, err;
    const int code = tdc::tdcRun(args, out, err);
    if (code != 0)
        benchmark::DoNotOptimize(err);
    return out;
}

/** Cold: no disk tier, memory tier cleared before every iteration. */
void
benchCold(benchmark::State &state, const std::vector<std::string> &args)
{
    tdc::resultCache().setDirectory("");
    for (auto _ : state) {
        state.PauseTiming();
        tdc::resultCache().clearMemory();
        state.ResumeTiming();
        std::string out = run(args);
        benchmark::DoNotOptimize(out);
    }
}

/** Warm: one priming run, then every iteration replays from memory. */
void
benchWarm(benchmark::State &state, const std::vector<std::string> &args)
{
    tdc::resultCache().setDirectory("");
    tdc::resultCache().clearMemory();
    run(args); // prime
    for (auto _ : state) {
        std::string out = run(args);
        benchmark::DoNotOptimize(out);
    }
}

/** WarmDisk: primed --cache-dir, memory tier dropped per iteration —
 *  a fresh process against a shared cache directory. */
void
benchWarmDisk(benchmark::State &state, const std::vector<std::string> &args)
{
    const fs::path dir =
        fs::temp_directory_path() / "tdc_bench_result_cache";
    fs::remove_all(dir);
    tdc::resultCache().setDirectory(dir.string());
    tdc::resultCache().clearMemory();
    run(args); // prime the disk tier
    for (auto _ : state) {
        state.PauseTiming();
        tdc::resultCache().clearMemory();
        state.ResumeTiming();
        std::string out = run(args);
        benchmark::DoNotOptimize(out);
    }
    tdc::resultCache().setDirectory("");
    fs::remove_all(dir);
}

const std::vector<std::string> kFig7 = {"--figure", "fig7"};
const std::vector<std::string> kFig8 = {"--figure", "fig8"};
const std::vector<std::string> kGrid = {
    "--scheme", "2d:edc8/i4+vp32", "--scheme", "conv:secded/i4",
    "--scheme", "2d:edc16/i2+vp32", "--fault", "single",
    "--fault", "32x32", "--fault", "row:32", "--events", "100"};
const std::vector<std::string> kOptimize = {
    "--optimize", "2d:edc{8,16,32}/i{1,2,4}+vp32", "--trials", "20"};

void BM_Fig7Cold(benchmark::State &s) { benchCold(s, kFig7); }
void BM_Fig7Warm(benchmark::State &s) { benchWarm(s, kFig7); }
void BM_Fig7WarmDisk(benchmark::State &s) { benchWarmDisk(s, kFig7); }
void BM_Fig8Cold(benchmark::State &s) { benchCold(s, kFig8); }
void BM_Fig8Warm(benchmark::State &s) { benchWarm(s, kFig8); }
void BM_CustomGridCold(benchmark::State &s) { benchCold(s, kGrid); }
void BM_CustomGridWarm(benchmark::State &s) { benchWarm(s, kGrid); }
void BM_CustomGridWarmDisk(benchmark::State &s) { benchWarmDisk(s, kGrid); }
void BM_OptimizeCold(benchmark::State &s) { benchCold(s, kOptimize); }
void BM_OptimizeWarm(benchmark::State &s) { benchWarm(s, kOptimize); }

BENCHMARK(BM_Fig7Cold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig7Warm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig7WarmDisk)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig8Cold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig8Warm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CustomGridCold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CustomGridWarm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CustomGridWarmDisk)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OptimizeCold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OptimizeWarm)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
