/**
 * @file
 * DRAM/chipkill backend benchmarks (BENCH_0010_chipkill.json): the
 * cost of symbol-granular protection next to the bit-granular schemes.
 *
 * - RsDecode/<b>: the GF(2^b) SSC-DSD fast decoder over a random mix
 *   of clean / single-error / garbage words (the scrub inner loop).
 * - Inject/<scheme>: injectAndRecover Monte-Carlo cells on the dram:
 *   schemes (threads at the pool default).
 * - Engine/chipkill: runLifetime on a chipkill rank, jaguar*10000,
 *   weekly scrub with 2 spare chips.
 * - FigureColdVsWarm: "--figure chipkill" through the driver, cold
 *   (memory tier cleared) vs warm (replayed from the result cache).
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "driver/tdc_run.hh"
#include "ecc/reed_solomon.hh"
#include "reliability/lifetime.hh"
#include "reliability/result_cache.hh"
#include "scheme/scheme.hh"

namespace
{

void
benchRsDecode(benchmark::State &state, unsigned symbol_bits,
              size_t data_symbols)
{
    const tdc::SymbolRsCode rs(symbol_bits, data_symbols);
    tdc::Rng rng(1);
    // A mix of clean, single-error, and garbage words: the syndrome
    // fast path, the locator path, and the reject path together.
    std::vector<std::vector<uint32_t>> words;
    for (int i = 0; i < 64; ++i) {
        std::vector<uint32_t> word(rs.codeSymbols(), 0);
        for (size_t j = rs.kCheckSymbols; j < word.size(); ++j)
            word[j] = uint32_t(rng.nextBelow(rs.field().size()));
        rs.encode(word);
        if (i % 4 == 1)
            word[rng.nextBelow(word.size())] ^=
                uint32_t(rng.nextBelow(rs.field().size() - 1)) + 1;
        if (i % 4 == 2)
            for (uint32_t &sym : word)
                sym = uint32_t(rng.nextBelow(rs.field().size()));
        words.push_back(std::move(word));
    }
    std::vector<uint32_t> scratch;
    for (auto _ : state) {
        for (const std::vector<uint32_t> &word : words) {
            scratch = word;
            const tdc::SymbolDecodeResult res = rs.decode(scratch);
            benchmark::DoNotOptimize(res);
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(words.size()));
}

void
benchInject(benchmark::State &state, const std::string &spec)
{
    const tdc::SchemePtr scheme = tdc::parseScheme(spec);
    const tdc::FaultModel fault = tdc::parseFaultModel("chip:any");
    for (auto _ : state) {
        const tdc::InjectionOutcome out =
            scheme->injectAndRecover(fault, 50, 10107);
        benchmark::DoNotOptimize(out);
    }
}

void
benchEngine(benchmark::State &state, const std::string &spec)
{
    const tdc::SchemePtr scheme = tdc::parseScheme(spec);
    tdc::LifetimeParams p;
    p.schemeSpec = scheme->spec();
    p.mix = tdc::parseFitMix("jaguar*10000");
    p.missionHours = 5.0 * 8760.0;
    p.scrubIntervalHours = 168.0;
    p.spareRows = 2;
    p.trials = 40;
    p.seed = 4242;
    for (auto _ : state) {
        const tdc::LifetimeResult res =
            tdc::runLifetime(p, [&](uint64_t seed) {
                return scheme->openLifetimeSession(seed);
            });
        benchmark::DoNotOptimize(res);
    }
}

std::string
runFigure()
{
    std::string out, err;
    const int code = tdc::tdcRun({"--figure", "chipkill"}, out, err);
    if (code != 0)
        benchmark::DoNotOptimize(err);
    return out;
}

void
benchFigureCold(benchmark::State &state)
{
    tdc::resultCache().setDirectory("");
    for (auto _ : state) {
        state.PauseTiming();
        tdc::resultCache().clearMemory();
        state.ResumeTiming();
        std::string out = runFigure();
        benchmark::DoNotOptimize(out);
    }
}

void
benchFigureWarm(benchmark::State &state)
{
    tdc::resultCache().setDirectory("");
    tdc::resultCache().clearMemory();
    runFigure(); // prime
    for (auto _ : state) {
        std::string out = runFigure();
        benchmark::DoNotOptimize(out);
    }
    tdc::resultCache().clearMemory();
}

BENCHMARK_CAPTURE(benchRsDecode, gf16_rs15_12, 4, 12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(benchRsDecode, gf256_rs11_8, 8, 8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(benchInject, chipkill_x4, "dram:chipkill/x4")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(benchInject, iecc_chipkill_x8, "dram:iecc+chipkill/x8")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(benchEngine, chipkill_x4, "dram:chipkill/x4")
    ->Unit(benchmark::kMillisecond);
BENCHMARK(benchFigureCold)->Unit(benchmark::kMillisecond);
BENCHMARK(benchFigureWarm)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
