/**
 * @file
 * Ablation studies on the 2D design choices the paper calls out:
 *
 *  1. Vertical interleave factor V (8/16/32/64): coverage height vs.
 *     vertical storage overhead and recovery latency.
 *  2. Horizontal code choice (EDC8 vs SECDED): inline-correction
 *     capability and storage.
 *  3. Port-stealing window: how much store-queue residency the L1
 *     needs before the read-before-write reads disappear.
 *  4. Read-before-write on/off: the isolated IPC cost of vertical
 *     parity maintenance.
 */

#include <cstdio>

#include "array/fault.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/twod_array.hh"
#include "cpu/cmp_simulator.hh"
#include "reliability/scrub_model.hh"

using namespace tdc;

namespace
{

void
verticalInterleaveSweep()
{
    std::printf("--- Ablation 1: vertical interleave factor (256-row "
                "bank, EDC8+Intv4 horizontal) ---\n\n");
    Rng rng(31337);
    Table t({"V (parity rows)", "Vertical storage", "Total overhead",
             "Max cluster height", "Corrects 32x32?", "Recovery row reads"});
    for (size_t v : {8u, 16u, 32u, 64u}) {
        TwoDimConfig cfg = TwoDimConfig::l1Default();
        cfg.verticalParityRows = v;
        TwoDimArray arr(cfg);
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                arr.writeWord(r, s, BitVector(64, rng.next()));

        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), 32, 32, 1.0);
        const bool ok = arr.scrub();
        const uint64_t reads = arr.lastRecovery().rowReads;
        t.addRow({std::to_string(v),
                  Table::pct(double(v) / double(cfg.dataRows)),
                  Table::pct(arr.storageOverhead()),
                  std::to_string(v), ok ? "yes" : "no",
                  std::to_string(reads)});
    }
    t.print();
    std::printf("\nV trades vertical storage and coverage height; V=32 "
                "(the paper's choice) is the\nsmallest factor that "
                "covers 32x32 clusters.\n\n");
}

void
horizontalCodeSweep()
{
    std::printf("--- Ablation 2: horizontal code choice ---\n\n");
    Rng rng(777);
    Table t({"Horizontal", "Storage (H only)", "Inline single-bit fix",
             "Detect width (Intv4)", "32x32 corrected?"});
    for (CodeKind kind : {CodeKind::kEdc8, CodeKind::kEdc16,
                          CodeKind::kSecDed}) {
        TwoDimConfig cfg = TwoDimConfig::l1Default();
        cfg.horizontalKind = kind;
        TwoDimArray arr(cfg);
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                arr.writeWord(r, s, BitVector(64, rng.next()));
        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), 32, 32, 1.0);
        const bool ok = arr.scrub();

        const CodePtr code = makeCode(kind, 64);
        t.addRow({codeKindName(kind), Table::pct(code->storageOverhead()),
                  code->correctCapability() > 0 ? "yes" : "no",
                  std::to_string(4 * code->burstDetectCapability()),
                  ok ? "yes" : "no"});
    }
    t.print();
    std::printf("\nSECDED horizontal adds inline correction (the yield "
                "configuration of Section 5.2)\nat the same storage as "
                "EDC8; EDC16 widens detection but doubles check bits.\n\n");
}

void
stealWindowSweep()
{
    std::printf("--- Ablation 3: port-stealing window (fat CMP, OLTP) "
                "---\n\n");
    const WorkloadProfile &w = workloadByName("OLTP");
    Table t({"Steal window (cycles)", "IPC loss vs baseline"});
    CmpSimulator base(CmpConfig::fat(), w, ProtectionConfig::none(), 42);
    const double base_ipc = base.run(120000).ipc();
    for (unsigned window : {0u, 1u, 2u, 4u, 8u, 16u}) {
        CmpConfig m = CmpConfig::fat();
        m.stealWindow = window;
        ProtectionConfig prot = ProtectionConfig::l1Only(window > 0);
        CmpSimulator sim(m, w, prot, 42);
        const double ipc = sim.run(120000).ipc();
        t.addRow({std::to_string(window),
                  Table::pct((base_ipc - ipc) / base_ipc)});
    }
    t.print();
    std::printf("\nA few cycles of store-queue residency are enough to "
                "absorb most read-before-\nwrite reads into idle port "
                "slots.\n\n");
}

void
writeThroughComparison()
{
    std::printf("--- Ablation 5: 2D write-back L1 vs EDC write-through "
                "L1 (both over 2D L2) ---\n\n");
    Table t({"Machine", "Workload", "Scheme", "IPC loss",
             "L2 writes / 100 cycles"});
    for (const CmpConfig &m : {CmpConfig::fat(), CmpConfig::lean()}) {
        for (const char *name : {"OLTP", "Web"}) {
            const WorkloadProfile &w = workloadByName(name);
            CmpSimulator base(m, w, ProtectionConfig::none(), 42);
            const double base_ipc = base.run(120000).ipc();
            for (const ProtectionConfig &prot :
                 {ProtectionConfig::full(true),
                  ProtectionConfig::writeThroughL1()}) {
                CmpSimulator sim(m, w, prot, 42);
                const CmpSimResult r = sim.run(120000);
                t.addRow({m.name, name, prot.label(),
                          Table::pct((base_ipc - r.ipc()) / base_ipc),
                          Table::num(r.per100(r.l2Writes), 1)});
            }
        }
    }
    t.print();
    std::printf("\nWrite-through duplicates every store into the shared "
                "L2: several times the L2\nwrite traffic of the "
                "write-back 2D scheme, and a larger IPC cost on the "
                "lean CMP\nwhose threads contend for L2 banks (the "
                "Section 2.1/5.1 argument for 2D-protected\nwrite-back "
                "L1 caches).\n\n");
}

void
readBeforeWriteCost()
{
    std::printf("--- Ablation 4: isolated read-before-write cost "
                "(full 2D, both machines) ---\n\n");
    Table t({"Machine", "Workload", "Extra reads / 100 cycles",
             "IPC loss"});
    for (const CmpConfig &m : {CmpConfig::fat(), CmpConfig::lean()}) {
        for (const char *name : {"OLTP", "Ocean"}) {
            const WorkloadProfile &w = workloadByName(name);
            CmpSimulator base(m, w, ProtectionConfig::none(), 42);
            CmpSimulator prot(m, w, ProtectionConfig::full(true), 42);
            const CmpSimResult rb = base.run(120000);
            const CmpSimResult rp = prot.run(120000);
            t.addRow({m.name, name,
                      Table::num(rp.per100(rp.l1ExtraReads +
                                           rp.l2ExtraReads), 1),
                      Table::pct((rb.ipc() - rp.ipc()) / rb.ipc())});
        }
    }
    t.print();
    std::printf("\n");
}

void
recoveryLatencySweep()
{
    std::printf("--- Ablation 7: recovery latency vs bank size "
                "(Section 4: 'a few hundred or\n    thousand cycles, "
                "depending on the number of rows') ---\n\n");
    Rng rng(4242);
    Table t({"Bank rows", "Fault", "Recovery row reads",
             "Reads / bank rows"});
    for (size_t rows : {64u, 128u, 256u, 512u, 1024u}) {
        TwoDimConfig cfg = TwoDimConfig::l1Default();
        cfg.dataRows = rows;
        TwoDimArray arr(cfg);
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                arr.writeWord(r, s, BitVector(64, rng.next()));
        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), 32, 32, 1.0);
        const RecoveryReport rep = arr.recover();
        t.addRow({std::to_string(rows),
                  rep.success ? "32x32 corrected" : "FAILED",
                  std::to_string(rep.rowReads),
                  Table::num(double(rep.rowReads) / double(rows), 2)});
    }
    t.print();
    std::printf("\nRecovery costs a small constant number of bank "
                "marches (O(rows)), independent\nof the error size — "
                "cheap because errors are rare (the paper's argument "
                "that the\nrecovery path needs no optimization).\n\n");
}

void
scrubIntervalSweep()
{
    std::printf("--- Ablation 6: scrub interval vs per-read checking "
                "(16MB, SECDED words) ---\n\n");
    Table t({"Scrub interval", "E[uncorrectable] / 5 years",
             "P(survive 5 years)"});
    const double mission = 5 * 8760.0;
    // Scale the soft-error rate up to a harsh environment so the
    // differences are visible at table precision.
    auto params = [](double interval) {
        ScrubParams p;
        p.words = 2 * 1024 * 1024;
        p.errorsPerHour = 0.5;
        p.scrubIntervalHours = interval;
        return p;
    };
    for (double interval : {0.0, 1.0, 24.0, 24.0 * 7, 24.0 * 30}) {
        ScrubModel m(params(interval));
        const char *label = interval == 0.0 ? "per-read check"
                                            : nullptr;
        t.addRow({label != nullptr ? label
                                   : Table::num(interval, 0) + " h",
                  Table::num(m.expectedUncorrectable(mission), 4),
                  Table::pct(m.survivalProbability(mission), 2)});
    }
    t.print();
    std::printf("\nScrubbing's vulnerability window grows linearly with "
                "the interval (Section 2.1);\nchecking on every read "
                "eliminates it, which is why the 2D scheme keeps the\n"
                "horizontal check on the access path.\n\n");
}

} // namespace

int
main()
{
    std::printf("=== Ablations: 2D coding design choices ===\n\n");
    verticalInterleaveSweep();
    horizontalCodeSweep();
    stealWindowSweep();
    readBeforeWriteCost();
    writeThroughComparison();
    scrubIntervalSweep();
    recoveryLatencySweep();
    return 0;
}
