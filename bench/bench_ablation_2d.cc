/**
 * @file
 * Ablation studies on the 2D design choices — thin wrapper over the tdc_run
 * driver ("tdc_run --figure ablation"); table output is byte-identical to
 * the historical standalone bench.
 */

#include "driver/tdc_run.hh"

int
main()
{
    return tdc::tdcRunMain({"--figure", "ablation"});
}
