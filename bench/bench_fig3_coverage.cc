/**
 * @file
 * Figure 3 — error coverage and storage overhead of three protection
 * schemes on a 256x256-bit data array, verified by fault injection
 * against the real codec implementations:
 *
 *  (a) conventional 4-way interleaved (72,64) SECDED   (12.5% extra)
 *  (b) conventional 4-way interleaved (121,64) OECNED  (89.1% extra)
 *  (c) 2D coding: 4-way interleaved EDC8 + vertical EDC32 (25% extra)
 *
 * The injection grid (footprints x schemes) is one declarative
 * campaign executed over the worker pool (each cell a Monte-Carlo
 * campaign with its own counter-based seed), so the whole figure is
 * bit-identical at any TDC_THREADS setting.
 */

#include <cstdio>

#include "reliability/figure_campaigns.hh"

using namespace tdc;

namespace
{
constexpr int kTrialsPerPoint = 40;
} // namespace

int
main()
{
    std::printf("=== Figure 3: coverage and overhead on a 256x256 data "
                "array ===\n\n");
    figure3OverheadCampaign().print();

    std::printf("\n--- Injection campaigns (%d solid clusters per point)"
                " ---\n\n", kTrialsPerPoint);
    figure3InjectionCampaign(kTrialsPerPoint).print();

    std::printf(
        "\nPaper shape: (a) corrects only <=4-bit row bursts; (b) buys "
        "32-bit bursts at 89%%\nstorage; (c) corrects full 32x32 "
        "clusters at 25%%. Full-column failures (1x256)\nneed the "
        "SECDED-horizontal variant (the grey box of Figure 4(b)): with "
        "an even\nnumber of rows per vertical group the column flip is "
        "parity-invisible, so the\nEDC-only scheme detects but cannot "
        "locate it -- SECDED pinpoints and fixes it\nrow by row.\n");
    return 0;
}
