/**
 * @file
 * Figure 3: error coverage and storage overhead by fault injection — thin wrapper over the tdc_run
 * driver ("tdc_run --figure fig3"); table output is byte-identical to
 * the historical standalone bench.
 */

#include "driver/tdc_run.hh"

int
main()
{
    return tdc::tdcRunMain({"--figure", "fig3"});
}
