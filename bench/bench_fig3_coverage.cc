/**
 * @file
 * Figure 3 — error coverage and storage overhead of three protection
 * schemes on a 256x256-bit data array, verified by fault injection
 * against the real codec implementations:
 *
 *  (a) conventional 4-way interleaved (72,64) SECDED   (12.5% extra)
 *  (b) conventional 4-way interleaved (121,64) OECNED  (89.1% extra)
 *  (c) 2D coding: 4-way interleaved EDC8 + vertical EDC32 (25% extra)
 */

#include <cstdio>
#include <vector>

#include "array/fault.hh"
#include "array/protected_array.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/twod_array.hh"
#include "ecc/code_factory.hh"

using namespace tdc;

namespace
{

constexpr int kTrialsPerPoint = 40;

/** Outcome counters of one injection campaign. */
struct Campaign
{
    int corrected = 0;
    int detectedOnly = 0;
    int silent = 0;
    int trials = 0;

    std::string verdict() const
    {
        if (corrected == trials)
            return "corrected";
        if (corrected + detectedOnly == trials)
            return corrected > 0 ? "partially corrected" : "detected only";
        return "NOT covered";
    }
};

/** Inject width x height clusters into a conventional array. */
Campaign
runConventional(CodeKind kind, size_t width, size_t height, Rng &rng)
{
    Campaign c;
    for (int t = 0; t < kTrialsPerPoint; ++t) {
        ProtectedArray arr(256, makeCode(kind, 64), 4);
        std::vector<std::vector<BitVector>> golden(
            arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
        for (size_t r = 0; r < arr.rows(); ++r) {
            for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                BitVector d(64, rng.next());
                arr.writeWord(r, s, d);
                golden[r][s] = d;
            }
        }
        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), width, height, 1.0);

        bool all_ok = true, any_detect = false, any_silent = false;
        for (size_t r = 0; r < arr.rows(); ++r) {
            for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                AccessResult res = arr.readWord(r, s);
                if (res.status == DecodeStatus::kDetectedUncorrectable) {
                    any_detect = true;
                    all_ok = false;
                } else if (res.data != golden[r][s]) {
                    any_silent = true;
                    all_ok = false;
                }
            }
        }
        c.corrected += all_ok;
        c.detectedOnly += !all_ok && any_detect && !any_silent;
        c.silent += any_silent;
        ++c.trials;
    }
    return c;
}

/** Inject width x height clusters into the 2D-coded array. */
Campaign
runTwoDim(size_t width, size_t height, Rng &rng,
          CodeKind horizontal = CodeKind::kEdc8)
{
    Campaign c;
    for (int t = 0; t < kTrialsPerPoint; ++t) {
        TwoDimConfig cfg = TwoDimConfig::l1Default(); // 256 rows, V=32
        cfg.horizontalKind = horizontal;
        TwoDimArray arr(cfg);
        std::vector<std::vector<BitVector>> golden(
            arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
        for (size_t r = 0; r < arr.rows(); ++r) {
            for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                BitVector d(64, rng.next());
                arr.writeWord(r, s, d);
                golden[r][s] = d;
            }
        }
        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), width, height, 1.0);

        const bool recovered = arr.scrub();
        bool all_ok = recovered, any_silent = false;
        for (size_t r = 0; r < arr.rows() && all_ok; ++r) {
            for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                AccessResult res = arr.readWord(r, s);
                if (!res.ok() || res.data != golden[r][s]) {
                    all_ok = false;
                    any_silent |= res.ok() && res.data != golden[r][s];
                    break;
                }
            }
        }
        c.corrected += all_ok;
        c.detectedOnly += !all_ok && !any_silent;
        c.silent += any_silent;
        ++c.trials;
    }
    return c;
}

} // namespace

int
main()
{
    Rng rng(2026);

    std::printf("=== Figure 3: coverage and overhead on a 256x256 data "
                "array ===\n\n");

    Table overhead({"Scheme", "Storage overhead", "Guaranteed coverage"});
    overhead.addRow({"(a) SECDED+Intv4",
                     Table::pct(makeCode(CodeKind::kSecDed, 64)
                                    ->storageOverhead()),
                     "4-bit row bursts"});
    overhead.addRow({"(b) OECNED+Intv4",
                     Table::pct(makeCode(CodeKind::kOecNed, 64)
                                    ->storageOverhead()),
                     "32-bit row bursts"});
    TwoDimArray twod(TwoDimConfig::l1Default());
    overhead.addRow({"(c) 2D EDC8+Intv4/EDC32",
                     Table::pct(twod.storageOverhead()),
                     "32x32-bit clusters"});
    overhead.print();

    std::printf("\n--- Injection campaigns (%d solid clusters per point)"
                " ---\n\n", kTrialsPerPoint);
    Table t({"Error footprint", "SECDED+Intv4", "OECNED+Intv4",
             "2D (EDC8, EDC32)", "2D (SECDED, EDC32)"});
    const std::pair<size_t, size_t> footprints[] = {
        {1, 1},  {4, 1},  {8, 1},   {32, 1},
        {4, 4},  {8, 8},  {16, 16}, {32, 32},
        {1, 32}, {1, 256},
    };
    for (auto [w, h] : footprints) {
        const Campaign a = runConventional(CodeKind::kSecDed, w, h, rng);
        const Campaign b = runConventional(CodeKind::kOecNed, w, h, rng);
        const Campaign c = runTwoDim(w, h, rng);
        const Campaign d = runTwoDim(w, h, rng, CodeKind::kSecDed);
        t.addRow({std::to_string(w) + "x" + std::to_string(h),
                  a.verdict(), b.verdict(), c.verdict(), d.verdict()});
    }
    t.print();

    std::printf(
        "\nPaper shape: (a) corrects only <=4-bit row bursts; (b) buys "
        "32-bit bursts at 89%%\nstorage; (c) corrects full 32x32 "
        "clusters at 25%%. Full-column failures (1x256)\nneed the "
        "SECDED-horizontal variant (the grey box of Figure 4(b)): with "
        "an even\nnumber of rows per vertical group the column flip is "
        "parity-invisible, so the\nEDC-only scheme detects but cannot "
        "locate it -- SECDED pinpoints and fixes it\nrow by row.\n");
    return 0;
}
