/**
 * @file
 * Figure 7: area/latency/power of schemes with 32x32 coverage — thin wrapper over the tdc_run
 * driver ("tdc_run --figure fig7"); table output is byte-identical to
 * the historical standalone bench.
 */

#include "driver/tdc_run.hh"

int
main()
{
    return tdc::tdcRunMain({"--figure", "fig7"});
}
