/**
 * @file
 * Figure 7 — code area, coding latency, and dynamic power of 2D
 * coding vs. conventional schemes with the same 32x32-bit coverage
 * target, normalized to SECDED with 2-way physical interleaving.
 *
 * (a) 64kB L1 data cache: 2D(EDC8+Intv4, EDC32), DECTED+Intv16,
 *     QECPED+Intv8, OECNED+Intv4, and EDC8+Intv4 with write-through
 *     duplication.
 * (b) 4MB L2: 2D(EDC16+Intv2, EDC32), DECTED+Intv16, QECPED+Intv8,
 *     OECNED+Intv4.
 *
 * Each panel is a declarative grid executed by the unified campaign
 * driver (reliability/figure_campaigns.hh); the golden-pin tests run
 * the very same builders.
 */

#include <cstdio>

#include "reliability/figure_campaigns.hh"

using namespace tdc;

int
main()
{
    std::printf("=== Figure 7: overhead of coding schemes for 32x32-bit "
                "coverage ===\n\n");

    figure7Campaign("--- Figure 7(a): 64kB L1 data cache (normalized to "
                    "SECDED+Intv2 = 100%) ---",
                    CacheGeometry::l1(),
                    {
                        SchemeSpec::twoDim(CodeKind::kEdc8, 4),
                        SchemeSpec::conventional(CodeKind::kDecTed, 16),
                        SchemeSpec::conventional(CodeKind::kQecPed, 8),
                        SchemeSpec::conventional(CodeKind::kOecNed, 4),
                        SchemeSpec::writeThrough(CodeKind::kEdc8, 4),
                    })
        .print();
    std::printf("\n");

    figure7Campaign("--- Figure 7(b): 4MB L2 cache (normalized to "
                    "SECDED+Intv2 = 100%) ---",
                    CacheGeometry::l2(),
                    {
                        SchemeSpec::twoDim(CodeKind::kEdc16, 2),
                        SchemeSpec::conventional(CodeKind::kDecTed, 16),
                        SchemeSpec::conventional(CodeKind::kQecPed, 8),
                        SchemeSpec::conventional(CodeKind::kOecNed, 4),
                    })
        .print();
    std::printf("\n");

    std::printf(
        "Paper shape: 2D coding is the cheapest on every axis; "
        "conventional multi-bit ECC\npays 300-500%% dynamic power "
        "(coding logic + deep interleaving); write-through\nsaves array "
        "area but burns power duplicating stores into the L2.\n");
    return 0;
}
