/**
 * @file
 * Related-work comparison (paper Section 6): the classic HV-parity /
 * product code (Tanner '84 style) vs. the paper's 2D coding, on the
 * same 256x256 array, by fault injection against the real
 * implementations. Shows why "two parity dimensions" alone is not the
 * contribution — the interleaving of both dimensions and the
 * decoupling of detection from correction are.
 *
 * The footprint x scheme grid is one declarative campaign over the
 * worker pool (counter-based per-cell seeds), shared with the Figure 3
 * injection machinery.
 */

#include <cstdio>

#include "reliability/figure_campaigns.hh"

using namespace tdc;

int
main()
{
    std::printf("=== Related work: HV product code vs 2D coding "
                "(256x256 array) ===\n\n");
    std::printf("Storage overhead: product code %.1f%%, 2D coding "
                "25.0%%\n\n", 100.0 * (512.0 / 65536.0));

    relatedWorkCampaign().print();

    std::printf(
        "\nThe product code is cheaper but collapses on any 2x2 block "
        "(silently!) and on\neven per-line patterns; the paper's scheme "
        "interleaves both dimensions so solid\nclusters within 32x32 "
        "never cancel, and detection never requires reading the\n"
        "vertical code.\n");
    return 0;
}
