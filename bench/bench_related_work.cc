/**
 * @file
 * Related-work comparison (paper Section 6): the classic HV-parity /
 * product code (Tanner '84 style) vs. the paper's 2D coding, on the
 * same 256x256 array, by fault injection against the real
 * implementations. Shows why "two parity dimensions" alone is not the
 * contribution — the interleaving of both dimensions and the
 * decoupling of detection from correction are.
 */

#include <cstdio>

#include "array/fault.hh"
#include "array/product_code_array.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/twod_array.hh"

using namespace tdc;

namespace
{

constexpr int kTrials = 50;

/** Outcome fractions of an injection campaign on the product code. */
std::string
productVerdict(size_t width, size_t height, Rng &rng)
{
    int corrected = 0, detected = 0, silent = 0;
    for (int t = 0; t < kTrials; ++t) {
        ProductCodeArray arr(256, 256);
        std::vector<BitVector> golden;
        for (size_t r = 0; r < 256; ++r) {
            BitVector row(256);
            for (size_t c = 0; c < 256; ++c)
                row.set(c, rng.nextBool());
            arr.writeRow(r, row);
            golden.push_back(row);
        }
        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), width, height, 1.0);
        const ProductCodeReport rep = arr.checkAndCorrect();
        bool matches = true;
        for (size_t r = 0; r < 256 && matches; ++r)
            matches = arr.readRow(r) == golden[r];
        if (rep.clean && matches)
            ++corrected;
        else if (rep.clean && !matches)
            ++silent;
        else
            ++detected;
    }
    if (silent == kTrials)
        return "SILENT corruption";
    if (corrected == kTrials)
        return "corrected";
    if (corrected == 0 && silent == 0)
        return "detected only";
    return std::to_string(corrected) + "/" + std::to_string(kTrials) +
           " corrected" + (silent ? " (+silent!)" : "");
}

std::string
twoDimVerdict(size_t width, size_t height, Rng &rng)
{
    int corrected = 0, detected = 0, silent = 0;
    for (int t = 0; t < kTrials; ++t) {
        TwoDimArray arr(TwoDimConfig::l1Default());
        std::vector<std::vector<BitVector>> golden(
            arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
        Rng fill(rng.next());
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                golden[r][s] = BitVector(64, fill.next());
                arr.writeWord(r, s, golden[r][s]);
            }
        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), width, height, 1.0);
        const bool ok = arr.scrub();
        bool matches = true;
        for (size_t r = 0; r < arr.rows() && matches; ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                if (arr.readWord(r, s).data != golden[r][s]) {
                    matches = false;
                    break;
                }
        if (ok && matches)
            ++corrected;
        else if (!ok)
            ++detected;
        else
            ++silent;
    }
    if (corrected == kTrials)
        return "corrected";
    if (silent > 0)
        return "silent corruption";
    if (corrected == 0)
        return "detected only";
    return std::to_string(corrected) + "/" + std::to_string(kTrials) +
           " corrected";
}

} // namespace

int
main()
{
    Rng rng(60606);
    std::printf("=== Related work: HV product code vs 2D coding "
                "(256x256 array) ===\n\n");
    std::printf("Storage overhead: product code %.1f%%, 2D coding "
                "25.0%%\n\n", 100.0 * (512.0 / 65536.0));

    Table t({"Error footprint", "HV product code", "2D (EDC8+Intv4, EDC32)"});
    const std::pair<size_t, size_t> footprints[] = {
        {1, 1}, {3, 1}, {1, 3}, {2, 2}, {8, 8}, {32, 32},
    };
    for (auto [w, h] : footprints) {
        t.addRow({std::to_string(w) + "x" + std::to_string(h),
                  productVerdict(w, h, rng), twoDimVerdict(w, h, rng)});
    }
    t.print();

    std::printf(
        "\nThe product code is cheaper but collapses on any 2x2 block "
        "(silently!) and on\neven per-line patterns; the paper's scheme "
        "interleaves both dimensions so solid\nclusters within 32x32 "
        "never cancel, and detection never requires reading the\n"
        "vertical code.\n");
    return 0;
}
