/**
 * @file
 * Related-work comparison: HV product code vs 2D coding — thin wrapper over the tdc_run
 * driver ("tdc_run --figure related-work"); table output is byte-identical to
 * the historical standalone bench.
 */

#include "driver/tdc_run.hh"

int
main()
{
    return tdc::tdcRunMain({"--figure", "related-work"});
}
