/**
 * @file
 * google-benchmark harness of the concurrent cache service: sustained
 * request throughput of the sharded serving loop under each generator
 * shape, the port-stealing fast path, background scrub + online fault
 * pressure, and the trace codec. Wall-clock only — every simulated
 * metric (latency percentiles, reliability verdicts) is pinned by the
 * determinism tests instead, so the two never mix.
 *
 * Recorded as the BENCH_0006_service.json trajectory via
 *   bench/record_bench.sh --bench bench_service \
 *       --out BENCH_0006_service.json <label>
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "common/parallel.hh"
#include "service/cache_service.hh"
#include "service/request_gen.hh"

using namespace tdc;

namespace
{

ServiceConfig
serviceConfig(size_t shards)
{
    ServiceConfig cfg;
    cfg.bank.dataRows = 64;
    cfg.bank.verticalParityRows = 16;
    cfg.banksPerShard = 4;
    cfg.shards = shards;
    cfg.stealWindow = 8;
    return cfg;
}

std::vector<ServiceRequest>
stream(const std::string &spec, const ServiceConfig &cfg)
{
    return buildRequests(parseRequestSpec(spec), cfg.totalWords(), 42);
}

void
reportThroughput(benchmark::State &state, size_t requests)
{
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(requests));
}

/** Serve a 100k-request stream; arg = shard count. */
void
BM_ServeUniform(benchmark::State &state)
{
    const ServiceConfig cfg = serviceConfig(size_t(state.range(0)));
    const CacheService service(cfg);
    const std::vector<ServiceRequest> reqs =
        stream("uniform/n100000/w30", cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(service.serve(reqs));
    reportThroughput(state, reqs.size());
}
BENCHMARK(BM_ServeUniform)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ServeZipf(benchmark::State &state)
{
    const ServiceConfig cfg = serviceConfig(4);
    const CacheService service(cfg);
    const std::vector<ServiceRequest> reqs =
        stream("zipf90/n100000/w30", cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(service.serve(reqs));
    reportThroughput(state, reqs.size());
}
BENCHMARK(BM_ServeZipf)->Unit(benchmark::kMillisecond);

void
BM_ServeBurstWithBackgroundEvents(benchmark::State &state)
{
    ServiceConfig cfg = serviceConfig(4);
    cfg.scrubInterval = 64;
    cfg.faultInterval = 4096;
    const CacheService service(cfg);
    const std::vector<ServiceRequest> reqs =
        stream("burst64/n100000/w30", cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(service.serve(reqs));
    reportThroughput(state, reqs.size());
}
BENCHMARK(BM_ServeBurstWithBackgroundEvents)
    ->Unit(benchmark::kMillisecond);

/** The acceptance-scale run: one million requests over four shards. */
void
BM_ServeMillionRequests(benchmark::State &state)
{
    const ServiceConfig cfg = serviceConfig(4);
    const CacheService service(cfg);
    const std::vector<ServiceRequest> reqs =
        stream("uniform/n1e6/w30", cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(service.serve(reqs));
    reportThroughput(state, reqs.size());
}
BENCHMARK(BM_ServeMillionRequests)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void
BM_GenerateRequests(benchmark::State &state)
{
    const ServiceConfig cfg = serviceConfig(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(stream("zipf90/n100000/w30", cfg));
    reportThroughput(state, 100000);
}
BENCHMARK(BM_GenerateRequests)->Unit(benchmark::kMillisecond);

void
BM_TraceRoundTrip(benchmark::State &state)
{
    const ServiceConfig cfg = serviceConfig(4);
    const std::vector<ServiceRequest> reqs =
        stream("uniform/n100000/w30", cfg);
    for (auto _ : state) {
        std::ostringstream out;
        writeTrace(out, reqs);
        std::istringstream in(out.str());
        benchmark::DoNotOptimize(readTrace(in));
    }
    reportThroughput(state, reqs.size());
}
BENCHMARK(BM_TraceRoundTrip)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
