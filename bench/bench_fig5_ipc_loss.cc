/**
 * @file
 * Figure 5 — IPC loss of 2D-protected caches on the fat and lean CMP
 * systems, across the six workloads and the four protection
 * configurations the paper plots: L1 only, L1 with port stealing,
 * L2 only, and L1(+stealing)+L2.
 *
 * Baseline and protected runs are matched-pair (same seeds), the
 * SimFlex-style methodology of Section 5.
 */

#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "cpu/cmp_batch.hh"

using namespace tdc;

namespace
{

constexpr uint64_t kCycles = 150000;
constexpr uint64_t kSeed = 42;

void
machineTable(const CmpConfig &m, const char *title)
{
    std::printf("--- Figure 5(%s) ---\n\n", title);

    // The whole grid — 6 workloads x (baseline + 4 protections) — is
    // one batch over the worker pool; matched pairs share kSeed.
    const ProtectionConfig protections[] = {
        ProtectionConfig::none(), ProtectionConfig::l1Only(false),
        ProtectionConfig::l1Only(true), ProtectionConfig::l2Only(),
        ProtectionConfig::full(true),
    };
    const std::vector<WorkloadProfile> &workloads = standardWorkloads();
    std::vector<CmpRunSpec> specs;
    for (const WorkloadProfile &w : workloads) {
        for (const ProtectionConfig &prot : protections)
            specs.push_back({m, w, prot, kSeed});
    }
    const std::vector<CmpSimResult> runs = runCmpBatch(specs, kCycles);

    Table t({"Workload", "L1 D-cache", "L1 + port stealing", "L2 cache",
             "L1(steal) + L2"});
    double sums[4] = {};
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const double base = runs[wi * 5].ipc();
        double losses[4];
        std::vector<std::string> row{workloads[wi].name};
        for (size_t pi = 0; pi < 4; ++pi) {
            losses[pi] = (base - runs[wi * 5 + 1 + pi].ipc()) / base;
            sums[pi] += losses[pi];
            row.push_back(Table::pct(losses[pi]));
        }
        t.addRow(row);
    }
    t.addRow({"Average", Table::pct(sums[0] / 6), Table::pct(sums[1] / 6),
              Table::pct(sums[2] / 6), Table::pct(sums[3] / 6)});
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Figure 5: performance (IPC) loss in 2D-protected "
                "caches ===\n\n");
    machineTable(CmpConfig::fat(), "a: fat baseline");
    machineTable(CmpConfig::lean(), "b: lean baseline");
    std::printf(
        "Paper shape: full protection costs low single digits (paper: "
        "2.9%% fat / 1.8%% lean\naverage); port stealing removes most "
        "of the fat CMP's L1 port contention; the\nlean CMP's loss has "
        "a larger L2 component than the fat CMP's.\n");
    return 0;
}
