/**
 * @file
 * Figure 5 — IPC loss of 2D-protected caches on the fat and lean CMP
 * systems, across the six workloads and the four protection
 * configurations the paper plots: L1 only, L1 with port stealing,
 * L2 only, and L1(+stealing)+L2.
 *
 * Baseline and protected runs are matched-pair (same seeds), the
 * SimFlex-style methodology of Section 5. Each machine's grid is one
 * IPC-loss campaign: a single cmp_batch over the worker pool, reduced
 * to the loss table (plus the per-column average) in grid order.
 */

#include <cstdio>

#include "cpu/ipc_campaign.hh"

using namespace tdc;

int
main()
{
    std::printf("=== Figure 5: performance (IPC) loss in 2D-protected "
                "caches ===\n\n");
    runIpcLossCampaign(IpcLossCampaignSpec::figure5(
                           CmpConfig::fat(), "--- Figure 5(a: fat "
                                             "baseline) ---"))
        .print();
    std::printf("\n");
    runIpcLossCampaign(IpcLossCampaignSpec::figure5(
                           CmpConfig::lean(), "--- Figure 5(b: lean "
                                              "baseline) ---"))
        .print();
    std::printf("\n");
    std::printf(
        "Paper shape: full protection costs low single digits (paper: "
        "2.9%% fat / 1.8%% lean\naverage); port stealing removes most "
        "of the fat CMP's L1 port contention; the\nlean CMP's loss has "
        "a larger L2 component than the fat CMP's.\n");
    return 0;
}
