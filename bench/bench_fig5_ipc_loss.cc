/**
 * @file
 * Figure 5 — IPC loss of 2D-protected caches on the fat and lean CMP
 * systems, across the six workloads and the four protection
 * configurations the paper plots: L1 only, L1 with port stealing,
 * L2 only, and L1(+stealing)+L2.
 *
 * Baseline and protected runs are matched-pair (same seeds), the
 * SimFlex-style methodology of Section 5.
 */

#include <cstdio>

#include "common/table.hh"
#include "cpu/cmp_simulator.hh"

using namespace tdc;

namespace
{

constexpr uint64_t kCycles = 150000;
constexpr uint64_t kSeed = 42;

double
loss(const CmpConfig &m, const WorkloadProfile &w,
     const ProtectionConfig &prot)
{
    CmpSimulator base_sim(m, w, ProtectionConfig::none(), kSeed);
    CmpSimulator prot_sim(m, w, prot, kSeed);
    const double base = base_sim.run(kCycles).ipc();
    const double protd = prot_sim.run(kCycles).ipc();
    return (base - protd) / base;
}

void
machineTable(const CmpConfig &m, const char *title)
{
    std::printf("--- Figure 5(%s) ---\n\n", title);
    Table t({"Workload", "L1 D-cache", "L1 + port stealing", "L2 cache",
             "L1(steal) + L2"});
    double sums[4] = {};
    for (const WorkloadProfile &w : standardWorkloads()) {
        const double l1 = loss(m, w, ProtectionConfig::l1Only(false));
        const double l1s = loss(m, w, ProtectionConfig::l1Only(true));
        const double l2 = loss(m, w, ProtectionConfig::l2Only());
        const double full = loss(m, w, ProtectionConfig::full(true));
        sums[0] += l1;
        sums[1] += l1s;
        sums[2] += l2;
        sums[3] += full;
        t.addRow({w.name, Table::pct(l1), Table::pct(l1s),
                  Table::pct(l2), Table::pct(full)});
    }
    t.addRow({"Average", Table::pct(sums[0] / 6), Table::pct(sums[1] / 6),
              Table::pct(sums[2] / 6), Table::pct(sums[3] / 6)});
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Figure 5: performance (IPC) loss in 2D-protected "
                "caches ===\n\n");
    machineTable(CmpConfig::fat(), "a: fat baseline");
    machineTable(CmpConfig::lean(), "b: lean baseline");
    std::printf(
        "Paper shape: full protection costs low single digits (paper: "
        "2.9%% fat / 1.8%% lean\naverage); port stealing removes most "
        "of the fat CMP's L1 port contention; the\nlean CMP's loss has "
        "a larger L2 component than the fat CMP's.\n");
    return 0;
}
