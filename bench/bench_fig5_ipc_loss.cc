/**
 * @file
 * Figure 5: IPC loss of 2D-protected caches on both CMP machines — thin wrapper over the tdc_run
 * driver ("tdc_run --figure fig5"); table output is byte-identical to
 * the historical standalone bench.
 */

#include "driver/tdc_run.hh"

int
main()
{
    return tdc::tdcRunMain({"--figure", "fig5"});
}
