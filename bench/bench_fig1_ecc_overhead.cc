/**
 * @file
 * Figure 1(b)/(c) — storage and energy overheads of per-word
 * EDC/ECC as code strength scales.
 *
 * (b): extra check-bit storage for 64-bit and 256-bit words.
 * (c): extra dynamic energy per read for a 64kB array of 64-bit words
 *      and a 4MB array of 256-bit words, relative to an unprotected
 *      array of the same geometry.
 */

#include <cstdio>

#include "common/table.hh"
#include "ecc/cost_model.hh"
#include "vlsi/sram_model.hh"
#include "vlsi/tech.hh"

using namespace tdc;

namespace
{

double
extraEnergyPerRead(CodeKind kind, size_t capacity_bytes, size_t word_bits,
                   size_t banks)
{
    const CodingCost cost = codingCost(kind, word_bits);
    const SramMetrics plain =
        cacheArrayMetrics(capacity_bytes, word_bits, 0, 2, banks,
                          SramObjective::kBalanced);
    const SramMetrics coded =
        cacheArrayMetrics(capacity_bytes, word_bits, cost.checkBits, 2,
                          banks, SramObjective::kBalanced);
    const double coding_logic =
        defaultTech().ePerGate * double(cost.detectGates);
    return (coded.readEnergy + coding_logic) / plain.readEnergy - 1.0;
}

} // namespace

int
main()
{
    std::printf("=== Figure 1(b): extra memory storage ===\n\n");
    Table storage({"Code", "HD", "64b word", "256b word"});
    for (CodeKind kind : kFigure1Kinds) {
        const CodingCost c64 = codingCost(kind, 64);
        const CodingCost c256 = codingCost(kind, 256);
        storage.addRow({codeKindName(kind),
                        std::to_string(makeCode(kind, 64)->minDistance()),
                        Table::pct(c64.storageOverhead),
                        Table::pct(c256.storageOverhead)});
    }
    storage.print();
    std::printf("\nPaper shape: storage grows steeply with correction "
                "strength; 64b words pay\nproportionally more "
                "(OECNED/64b = 89.1%% as quoted for Figure 3(b)).\n");

    std::printf("\n=== Figure 1(c): extra energy per read ===\n\n");
    Table energy({"Code", "64b word / 64kB array", "256b word / 4MB array"});
    for (CodeKind kind : kFigure1Kinds) {
        energy.addRow({codeKindName(kind),
                       Table::pct(extraEnergyPerRead(kind, 64 * 1024, 64,
                                                     1)),
                       Table::pct(extraEnergyPerRead(
                           kind, 4 * 1024 * 1024, 256, 8))});
    }
    energy.print();
    std::printf("\nPaper shape: energy overhead grows superlinearly with "
                "code strength (check-bit\ncolumns + wider XOR trees); "
                "EDC8 and SECDED stay cheap.\n");
    return 0;
}
