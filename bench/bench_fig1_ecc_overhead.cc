/**
 * @file
 * Figure 1(b)/(c) — storage and energy overheads of per-word
 * EDC/ECC as code strength scales.
 *
 * (b): extra check-bit storage for 64-bit and 256-bit words.
 * (c): extra dynamic energy per read for a 64kB array of 64-bit words
 *      and a 4MB array of 256-bit words, relative to an unprotected
 *      array of the same geometry.
 *
 * Both panels are declarative grids executed by the unified campaign
 * driver (reliability/figure_campaigns.hh); the golden-pin tests run
 * the very same builders.
 */

#include <cstdio>

#include "reliability/figure_campaigns.hh"

using namespace tdc;

int
main()
{
    std::printf("=== Figure 1(b): extra memory storage ===\n\n");
    figure1StorageCampaign().print();
    std::printf("\nPaper shape: storage grows steeply with correction "
                "strength; 64b words pay\nproportionally more "
                "(OECNED/64b = 89.1%% as quoted for Figure 3(b)).\n");

    std::printf("\n=== Figure 1(c): extra energy per read ===\n\n");
    figure1EnergyCampaign().print();
    std::printf("\nPaper shape: energy overhead grows superlinearly with "
                "code strength (check-bit\ncolumns + wider XOR trees); "
                "EDC8 and SECDED stay cheap.\n");
    return 0;
}
