/**
 * @file
 * Figure 1(b)/(c): storage and energy overheads of per-word EDC/ECC — thin wrapper over the tdc_run
 * driver ("tdc_run --figure fig1"); table output is byte-identical to
 * the historical standalone bench.
 */

#include "driver/tdc_run.hh"

int
main()
{
    return tdc::tdcRunMain({"--figure", "fig1"});
}
