/**
 * @file
 * The tdc_run binary: every figure of the study and every custom
 * scheme x fault x workload scenario, from one CLI (driver/tdc_run.hh).
 */

#include "driver/tdc_run.hh"

int
main(int argc, char **argv)
{
    return tdc::tdcRunMain(
        std::vector<std::string>(argv + 1, argv + argc));
}
