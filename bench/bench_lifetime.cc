/**
 * @file
 * Lifetime/FIT engine benchmarks (BENCH_0009_lifetime.json): the cost
 * of evolving protected devices over accelerated 5-year missions.
 *
 * - Engine/<scheme>: runLifetime on one scheme, 64-row geometry,
 *   jaguar*10000, weekly scrub — the per-cell cost of a lifetime
 *   campaign (threads at the pool default).
 * - Timeline: drawEventTimeline alone, the pure Poisson part.
 * - FigureColdVsWarm: "--figure lifetime" through the driver, cold
 *   (memory tier cleared) vs warm (replayed from the result cache) —
 *   the same cold/warm contract the other campaign benches pin.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "driver/tdc_run.hh"
#include "reliability/lifetime.hh"
#include "reliability/result_cache.hh"
#include "scheme/scheme.hh"

namespace
{

void
benchEngine(benchmark::State &state, const std::string &spec)
{
    const tdc::SchemePtr scheme = tdc::parseScheme(spec);
    tdc::LifetimeParams p;
    p.schemeSpec = scheme->spec();
    p.mix = tdc::parseFitMix("jaguar*10000");
    p.missionHours = 5.0 * 8760.0;
    p.scrubIntervalHours = 168.0;
    p.spareRows = 2;
    p.trials = 40;
    p.seed = 4242;
    for (auto _ : state) {
        const tdc::LifetimeResult res =
            tdc::runLifetime(p, [&](uint64_t seed) {
                return scheme->openLifetimeSession(seed);
            });
        benchmark::DoNotOptimize(res);
    }
}

void
benchTimeline(benchmark::State &state)
{
    const tdc::FitMix mix = tdc::parseFitMix("jaguar*10000");
    uint64_t seed = 0;
    for (auto _ : state) {
        const std::vector<tdc::LifetimeEvent> timeline =
            tdc::drawEventTimeline(mix, 5.0 * 8760.0, ++seed);
        benchmark::DoNotOptimize(timeline);
    }
}

std::string
runFigure()
{
    std::string out, err;
    const int code = tdc::tdcRun({"--figure", "lifetime"}, out, err);
    if (code != 0)
        benchmark::DoNotOptimize(err);
    return out;
}

void
benchFigureCold(benchmark::State &state)
{
    tdc::resultCache().setDirectory("");
    for (auto _ : state) {
        state.PauseTiming();
        tdc::resultCache().clearMemory();
        state.ResumeTiming();
        std::string out = runFigure();
        benchmark::DoNotOptimize(out);
    }
}

void
benchFigureWarm(benchmark::State &state)
{
    tdc::resultCache().setDirectory("");
    tdc::resultCache().clearMemory();
    runFigure(); // prime
    for (auto _ : state) {
        std::string out = runFigure();
        benchmark::DoNotOptimize(out);
    }
    tdc::resultCache().clearMemory();
}

BENCHMARK_CAPTURE(benchEngine, conv_secded, "conv:secded/i4/r64")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(benchEngine, twodim, "2d:edc8/i4+vp32/r64")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(benchEngine, prod, "prod:64x64")
    ->Unit(benchmark::kMillisecond);
BENCHMARK(benchTimeline)->Unit(benchmark::kMicrosecond);
BENCHMARK(benchFigureCold)->Unit(benchmark::kMillisecond);
BENCHMARK(benchFigureWarm)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
