/**
 * @file
 * google-benchmark microbenchmarks of the codec substrate: encode and
 * decode throughput of every code used in the study, plus the
 * 2D-array access paths (fast-path read, read-before-write, full
 * recovery sweep). These quantify the software cost of the models,
 * not the hardware latencies (those are in bench_fig7).
 */

#include <benchmark/benchmark.h>

#include "array/fault.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/twod_array.hh"
#include "core/twod_cache_store.hh"
#include "ecc/code_factory.hh"
#include "reliability/recovery_sweep.hh"

using namespace tdc;

namespace
{

CodeKind
kindFromIndex(int64_t index)
{
    static const CodeKind kinds[] = {
        CodeKind::kEdc8, CodeKind::kSecDed, CodeKind::kDecTed,
        CodeKind::kQecPed, CodeKind::kOecNed,
    };
    return kinds[index];
}

void
BM_Encode64(benchmark::State &state)
{
    const CodePtr code = makeCode(kindFromIndex(state.range(0)), 64);
    Rng rng(1);
    BitVector data(64, rng.next());
    for (auto _ : state) {
        benchmark::DoNotOptimize(code->encode(data));
    }
    state.SetLabel(code->name());
}
BENCHMARK(BM_Encode64)->DenseRange(0, 4);

void
BM_DecodeClean64(benchmark::State &state)
{
    const CodePtr code = makeCode(kindFromIndex(state.range(0)), 64);
    Rng rng(2);
    const BitVector cw = code->encode(BitVector(64, rng.next()));
    for (auto _ : state) {
        benchmark::DoNotOptimize(code->decode(cw));
    }
    state.SetLabel(code->name());
}
BENCHMARK(BM_DecodeClean64)->DenseRange(0, 4);

void
BM_DecodeCorrect64(benchmark::State &state)
{
    const CodePtr code = makeCode(kindFromIndex(state.range(0)), 64);
    if (code->correctCapability() == 0) {
        state.SkipWithError("detection-only code");
        return;
    }
    Rng rng(3);
    BitVector cw = code->encode(BitVector(64, rng.next()));
    for (size_t i = 0; i < code->correctCapability(); ++i)
        cw.flip(i * 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(code->decode(cw));
    }
    state.SetLabel(code->name() + " @ max errors");
}
BENCHMARK(BM_DecodeCorrect64)->DenseRange(0, 4);

/**
 * Dirty BCH decode: the full syndrome/BM/Chien pipeline with 1..t
 * injected errors (the paper's multi-bit events). Args: (code index,
 * error count).
 */
void
BM_DecodeDirty64(benchmark::State &state)
{
    const CodePtr code = makeCode(kindFromIndex(state.range(0)), 64);
    const size_t nerrs = size_t(state.range(1));
    Rng rng(7);
    BitVector cw = code->encode(BitVector(64, rng.next()));
    // Distinct random flip positions across the whole codeword.
    std::vector<size_t> flips;
    while (flips.size() < nerrs) {
        const size_t p = rng.nextBelow(cw.size());
        bool dup = false;
        for (size_t q : flips)
            dup |= q == p;
        if (!dup)
            flips.push_back(p);
    }
    for (size_t p : flips)
        cw.flip(p);
    for (auto _ : state) {
        benchmark::DoNotOptimize(code->decode(cw));
    }
    state.SetLabel(code->name() + " @ " + std::to_string(nerrs) +
                   " errors");
}
BENCHMARK(BM_DecodeDirty64)
    ->Args({2, 1})->Args({2, 2})          // DECTED (t=2)
    ->Args({3, 2})->Args({3, 4})          // QECPED (t=4)
    ->Args({4, 1})->Args({4, 4})->Args({4, 8}); // OECNED (t=8)

/**
 * Monte-Carlo recovery sweep (Figure 3-style injection campaign) at a
 * given worker-pool thread count. Arg: threads.
 */
void
BM_RecoverySweep(benchmark::State &state)
{
    setParallelThreads(unsigned(state.range(0)));
    RecoverySweepParams params;
    params.trials = 16;
    params.seed = 99;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runRecoverySweep(params));
    }
    setParallelThreads(0);
    state.SetLabel("16 trials, " + std::to_string(state.range(0)) +
                   " thread(s)");
}
BENCHMARK(BM_RecoverySweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Whole-cache scrub with a multi-bit event in every bank — the
 * bank-parallel recovery path of TwoDimCacheStore at a given
 * worker-pool thread count. Arg: threads.
 */
void
BM_CacheStoreScrubAll(benchmark::State &state)
{
    setParallelThreads(unsigned(state.range(0)));
    TwoDimCacheStore store(TwoDimConfig::l1Default(), 8);
    Rng rng(8);
    for (size_t w = 0; w < store.totalWords(); ++w)
        store.writeWord(w, BitVector(64, rng.next()));
    for (auto _ : state) {
        state.PauseTiming();
        FaultInjector inj(rng);
        for (size_t b = 0; b < store.banks(); ++b)
            inj.injectCluster(store.bank(b).cells(), 32, 32, 1.0);
        state.ResumeTiming();
        // Transient clusters are repaired back to the stored data, so
        // the store is clean again before the next iteration.
        benchmark::DoNotOptimize(store.scrubAll());
    }
    setParallelThreads(0);
    state.SetLabel("8 banks x 32x32 cluster, " +
                   std::to_string(state.range(0)) + " thread(s)");
}
BENCHMARK(BM_CacheStoreScrubAll)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_TwoDimReadFastPath(benchmark::State &state)
{
    TwoDimArray arr(TwoDimConfig::l1Default());
    Rng rng(4);
    for (size_t r = 0; r < arr.rows(); ++r)
        for (size_t s = 0; s < arr.wordsPerRow(); ++s)
            arr.writeWord(r, s, BitVector(64, rng.next()));
    size_t r = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(arr.readWord(r % arr.rows(), r % 4));
        ++r;
    }
}
BENCHMARK(BM_TwoDimReadFastPath);

void
BM_TwoDimReadBeforeWrite(benchmark::State &state)
{
    TwoDimArray arr(TwoDimConfig::l1Default());
    Rng rng(5);
    size_t r = 0;
    for (auto _ : state) {
        arr.writeWord(r % arr.rows(), r % 4, BitVector(64, rng.next()));
        ++r;
    }
}
BENCHMARK(BM_TwoDimReadBeforeWrite);

void
BM_TwoDimRecovery32x32(benchmark::State &state)
{
    Rng rng(6);
    for (auto _ : state) {
        state.PauseTiming();
        TwoDimArray arr(TwoDimConfig::l1Default());
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                arr.writeWord(r, s, BitVector(64, rng.next()));
        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), 32, 32, 1.0);
        state.ResumeTiming();
        benchmark::DoNotOptimize(arr.recover());
    }
}
BENCHMARK(BM_TwoDimRecovery32x32)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
