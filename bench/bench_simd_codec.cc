/**
 * @file
 * google-benchmark microbenchmarks of the dispatched SIMD codec
 * kernels (BENCH_0007): interleave extract/deposit, EDC fold, Hsiao
 * encode/decode, the batched line codec, and BCH dirty decode. Every
 * benchmark runs whatever backend the dispatch layer selected, so one
 * binary records both sides of the scalar-vs-SIMD comparison:
 *
 *   TDC_SIMD=scalar ./bench_simd_codec   # reference tier
 *   ./bench_simd_codec                   # dispatched (best) tier
 *
 * scripts/record_bench.sh --compare-simd automates the pair.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "array/interleave.hh"
#include "common/cpu_features.hh"
#include "common/rng.hh"
#include "core/line_codec.hh"
#include "ecc/bch.hh"
#include "ecc/hsiao.hh"
#include "ecc/interleaved_parity.hh"

using namespace tdc;

namespace
{

/** Tag the series with the backend actually exercised. */
void
labelBackend(benchmark::State &state, const std::string &what)
{
    state.SetLabel(what + " [" +
                   simdBackendName(activeSimdBackend()) + "]");
}

BitVector
randomRow(size_t bits, uint64_t seed)
{
    Rng rng(seed);
    BitVector row(bits);
    for (size_t w = 0; w < row.wordCount(); ++w)
        row.wordData()[w] = rng.next();
    // Restore the top-word invariant.
    if (bits % 64 != 0)
        row.wordData()[row.wordCount() - 1] &=
            (uint64_t(1) << (bits % 64)) - 1;
    return row;
}

struct InterleaveGeom
{
    const char *label;
    size_t cwBits;
    size_t degree;
};

const InterleaveGeom kInterleaveGeoms[] = {
    {"(72,64)/i4", 72, 4},   // L1 EDC8 and SECDED rows
    {"(272,256)/i2", 272, 2}, // L2 EDC16 rows
    {"(72,64)/i3", 72, 3},   // non-dividing degree (plan-cache path)
};

void
BM_InterleaveExtract(benchmark::State &state)
{
    const InterleaveGeom &g = kInterleaveGeoms[state.range(0)];
    const InterleaveMap map(g.cwBits, g.degree);
    const BitVector row = randomRow(map.rowBits(), 101);
    BitVector cw;
    for (auto _ : state) {
        for (size_t slot = 0; slot < map.degree(); ++slot) {
            map.extractWordInto(row, slot, cw);
            benchmark::DoNotOptimize(cw.wordData());
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(map.degree()));
    labelBackend(state, std::string("extract ") + g.label);
}
BENCHMARK(BM_InterleaveExtract)->DenseRange(0, 2);

void
BM_InterleaveDeposit(benchmark::State &state)
{
    const InterleaveGeom &g = kInterleaveGeoms[state.range(0)];
    const InterleaveMap map(g.cwBits, g.degree);
    BitVector row = randomRow(map.rowBits(), 102);
    const BitVector cw = randomRow(g.cwBits, 103);
    for (auto _ : state) {
        for (size_t slot = 0; slot < map.degree(); ++slot) {
            map.depositWord(row, slot, cw);
            benchmark::DoNotOptimize(row.wordData());
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(map.degree()));
    labelBackend(state, std::string("deposit ") + g.label);
}
BENCHMARK(BM_InterleaveDeposit)->DenseRange(0, 2);

// Per-codeword EDC *encode* is deliberately untracked: Code::encode is
// two word-parallel slice deposits plus a handful of XORs, so it is
// allocation-bound and tier-invariant by construction. The encode-side
// EDC series is BM_LineEncode (four codewords plus interleave deposit).
void
BM_EdcSyndromeClean(benchmark::State &state)
{
    const size_t k = state.range(0) == 0 ? 64 : 256;
    const InterleavedParityCode code(k, k == 64 ? 8 : 16);
    const BitVector cw = code.encode(randomRow(k, 105));
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.syndromeClean(cw));
    }
    labelBackend(state, code.name() + " syndromeClean");
}
BENCHMARK(BM_EdcSyndromeClean)->DenseRange(0, 1);

void
BM_HsiaoEncode(benchmark::State &state)
{
    const size_t k = state.range(0) == 0 ? 64 : 256;
    const HsiaoSecDedCode code(k);
    const BitVector data = randomRow(k, 106);
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.computeCheck(data));
    }
    labelBackend(state, code.name() + " encode");
}
BENCHMARK(BM_HsiaoEncode)->DenseRange(0, 1);

void
BM_HsiaoDecodeDirty(benchmark::State &state)
{
    const size_t k = state.range(0) == 0 ? 64 : 256;
    const HsiaoSecDedCode code(k);
    BitVector cw = code.encode(randomRow(k, 107));
    cw.flip(k / 2); // single-bit correction path
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.decode(cw));
    }
    labelBackend(state, code.name() + " decode dirty");
}
BENCHMARK(BM_HsiaoDecodeDirty)->DenseRange(0, 1);

void
BM_LineClean(benchmark::State &state)
{
    // Clean whole-line check: the scrub/recovery hot predicate. The
    // fused EDC fold engages on the accelerated tiers.
    const bool l2 = state.range(0) != 0;
    const InterleavedParityCode code(l2 ? 256 : 64, l2 ? 16 : 8);
    const InterleaveMap map(code.codewordBits(), l2 ? 2 : 4);
    const LineCodec line(code, map);
    std::vector<BitVector> words(map.degree(),
                                 randomRow(code.dataBits(), 108));
    BitVector row(map.rowBits());
    line.encodeLine(words, row);
    for (auto _ : state) {
        benchmark::DoNotOptimize(line.lineClean(row));
    }
    labelBackend(state, std::string("lineClean ") +
                            (l2 ? "edc16/i2" : "edc8/i4"));
}
BENCHMARK(BM_LineClean)->DenseRange(0, 1);

void
BM_LineEncode(benchmark::State &state)
{
    const bool l2 = state.range(0) != 0;
    const InterleavedParityCode code(l2 ? 256 : 64, l2 ? 16 : 8);
    const InterleaveMap map(code.codewordBits(), l2 ? 2 : 4);
    const LineCodec line(code, map);
    std::vector<BitVector> words;
    for (size_t s = 0; s < map.degree(); ++s)
        words.push_back(randomRow(code.dataBits(), 109 + s));
    BitVector row(map.rowBits());
    for (auto _ : state) {
        line.encodeLine(words, row);
        benchmark::DoNotOptimize(row.wordData());
    }
    labelBackend(state, std::string("encodeLine ") +
                            (l2 ? "edc16/i2" : "edc8/i4"));
}
BENCHMARK(BM_LineEncode)->DenseRange(0, 1);

void
BM_BchDecodeDirty(benchmark::State &state)
{
    // Four errors drive the locator to degree 4: the accelerated
    // tiers answer with the closed-form quartic, the scalar tier runs
    // the Chien sweep down to the cubic — the BENCH_0007 "dirty
    // decode" series.
    const size_t t = state.range(0) == 0 ? 4 : 8;
    const BchCode code(64, t);
    BitVector cw = code.encode(randomRow(64, 110));
    // High-position errors: the scalar Chien sweep scans nearly the
    // whole shortened length before its first deflation, while the
    // quartic closed form is position independent.
    const size_t n = code.codewordBits();
    for (size_t i = 0; i < 4; ++i)
        cw.flip(n - 1 - i * 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.decode(cw));
    }
    labelBackend(state, code.name() + " decode 4 errors");
}
BENCHMARK(BM_BchDecodeDirty)->DenseRange(0, 1);

} // namespace

BENCHMARK_MAIN();
