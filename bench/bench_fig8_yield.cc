/**
 * @file
 * Figure 8: yield and soft-error reliability with ECC hard-error correction — thin wrapper over the tdc_run
 * driver ("tdc_run --figure fig8"); table output is byte-identical to
 * the historical standalone bench.
 */

#include "driver/tdc_run.hh"

int
main()
{
    return tdc::tdcRunMain({"--figure", "fig8"});
}
