/**
 * @file
 * Figure 8 — yield and reliability when ECC corrects hard errors.
 *
 * (a) 16MB L2 cache yield vs. number of failing cells, for spare rows
 *     only (128), ECC only, ECC+16 spares, ECC+32 spares.
 * (b) Probability that all soft errors over a multi-year horizon stay
 *     correctable, for a system of ten 16MB caches at 1000 FIT/Mb,
 *     sweeping the hard error rate, with and without 2D coding.
 */

#include <cstdio>

#include "common/table.hh"
#include "reliability/soft_error_model.hh"
#include "reliability/yield_model.hh"

using namespace tdc;

int
main()
{
    std::printf("=== Figure 8(a): 16MB L2 cache yield vs failing cells "
                "===\n\n");
    YieldModel ym(YieldParams::l2Cache16MB());
    Table a({"Failing cells", "Spare_128", "ECC only", "ECC + Spare_16",
             "ECC + Spare_32"});
    for (double f : {0.0, 400.0, 800.0, 1600.0, 2400.0, 3200.0, 4000.0}) {
        a.addRow({Table::num(f, 0),
                  Table::pct(ym.yieldSpareOnly(f, 128)),
                  Table::pct(ym.yieldEccOnly(f)),
                  Table::pct(ym.yieldEccPlusSpares(f, 16)),
                  Table::pct(ym.yieldEccPlusSpares(f, 32))});
    }
    a.print();
    std::printf("\nPaper shape: spare-only collapses first; ECC-only "
                "degrades with multi-bit words;\nECC + a few spares "
                "stays near 100%% across the sweep.\n");

    std::printf("\n=== Figure 8(a) cross-check: Monte Carlo vs analytic "
                "(small array) ===\n\n");
    {
        YieldParams small;
        small.words = 65536;
        small.wordBits = 72;
        YieldModel sm(small);
        Rng rng(99);
        Table mc({"Failing cells", "ECC-only (analytic)",
                  "ECC-only (Monte Carlo)"});
        for (size_t f : {200u, 400u, 800u}) {
            const auto r = sm.monteCarlo(f, 16, 300, rng);
            mc.addRow({std::to_string(f),
                       Table::pct(sm.yieldEccOnly(double(f))),
                       Table::pct(r.eccOnly)});
        }
        mc.print();
    }

    std::printf("\n=== Figure 8(b): P(all soft errors correctable), "
                "10 x 16MB caches, 1000 FIT/Mb ===\n\n");
    Table b({"Years", "With 2D coding", "No 2D, HER=0.0005%",
             "No 2D, HER=0.001%", "No 2D, HER=0.005%"});
    SoftErrorModel her1(ReliabilityParams::figure8b(0.000005));
    SoftErrorModel her2(ReliabilityParams::figure8b(0.00001));
    SoftErrorModel her3(ReliabilityParams::figure8b(0.00005));
    for (double years = 0.0; years <= 5.0; years += 1.0) {
        b.addRow({Table::num(years, 0),
                  Table::pct(her1.successProbabilityWith2D(years)),
                  Table::pct(her1.successProbability(years)),
                  Table::pct(her2.successProbability(years)),
                  Table::pct(her3.successProbability(years))});
    }
    b.print();
    std::printf(
        "\nPaper shape: without 2D coding the success probability decays "
        "with operating\ntime, faster at higher hard-error rates; with 2D "
        "coding runtime immunity holds.\n");
    return 0;
}
