/**
 * @file
 * Figure 8 — yield and reliability when ECC corrects hard errors.
 *
 * (a) 16MB L2 cache yield vs. number of failing cells, for spare rows
 *     only (128), ECC only, ECC+16 spares, ECC+32 spares.
 * (b) Probability that all soft errors over a multi-year horizon stay
 *     correctable, for a system of ten 16MB caches at 1000 FIT/Mb,
 *     sweeping the hard error rate, with and without 2D coding.
 *
 * All three panels (including the Monte-Carlo cross-check, which now
 * runs the threaded monteCarloParallel with counter-based seeding) are
 * declarative grids executed by the unified campaign driver.
 */

#include <cstdio>

#include "reliability/figure_campaigns.hh"

using namespace tdc;

int
main()
{
    std::printf("=== Figure 8(a): 16MB L2 cache yield vs failing cells "
                "===\n\n");
    figure8YieldCampaign().print();
    std::printf("\nPaper shape: spare-only collapses first; ECC-only "
                "degrades with multi-bit words;\nECC + a few spares "
                "stays near 100%% across the sweep.\n");

    std::printf("\n=== Figure 8(a) cross-check: Monte Carlo vs analytic "
                "(small array) ===\n\n");
    figure8YieldMonteCarloCampaign().print();

    std::printf("\n=== Figure 8(b): P(all soft errors correctable), "
                "10 x 16MB caches, 1000 FIT/Mb ===\n\n");
    figure8SoftErrorCampaign().print();
    std::printf(
        "\nPaper shape: without 2D coding the success probability decays "
        "with operating\ntime, faster at higher hard-error rates; with 2D "
        "coding runtime immunity holds.\n");
    return 0;
}
