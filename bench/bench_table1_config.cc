/**
 * @file
 * Table 1: simulated systems and workload parameters — thin wrapper over the tdc_run
 * driver ("tdc_run --figure table1"); table output is byte-identical to
 * the historical standalone bench.
 */

#include "driver/tdc_run.hh"

int
main()
{
    return tdc::tdcRunMain({"--figure", "table1"});
}
