/**
 * @file
 * Table 1 — simulated systems and workload parameters.
 *
 * Prints the two machine configurations and the workload profiles the
 * simulation substitutes for the paper's full-system workloads.
 */

#include <cstdio>

#include "common/table.hh"
#include "cpu/cmp_config.hh"
#include "workload/workload_profile.hh"

using namespace tdc;

int
main()
{
    std::printf("=== Table 1: simulated systems ===\n\n");

    Table machines({"Parameter", "Fat CMP", "Lean CMP"});
    const CmpConfig fat = CmpConfig::fat();
    const CmpConfig lean = CmpConfig::lean();
    machines.addRow({"Cores", std::to_string(fat.cores),
                     std::to_string(lean.cores)});
    machines.addRow({"Core type", "4-wide out-of-order",
                     "2-wide in-order, 4 threads"});
    machines.addRow({"In-flight window", std::to_string(fat.robSize),
                     std::to_string(lean.robSize)});
    machines.addRow({"Store queue", std::to_string(fat.storeQueue),
                     std::to_string(lean.storeQueue)});
    machines.addRow({"L1 D-cache", "64kB 2-way 64B, 2-cycle, 2-port WB",
                     "64kB 2-way 64B, 2-cycle, 1-port WB"});
    machines.addRow({"L2 cache",
                     "16MB 8-way, " + std::to_string(fat.l2HitLatency) +
                         "-cycle hit, " + std::to_string(fat.l2Banks) +
                         " banks",
                     "4MB 16-way, " + std::to_string(lean.l2HitLatency) +
                         "-cycle hit, " + std::to_string(lean.l2Banks) +
                         " banks"});
    machines.addRow({"Memory latency (cycles)",
                     std::to_string(fat.memLatency),
                     std::to_string(lean.memLatency)});
    machines.print();

    std::printf("\n=== Table 1: workload profiles (substituted synthetic"
                " generators; see DESIGN.md) ===\n\n");
    Table wl({"Workload", "Class", "load%", "store%", "L1I miss%",
              "L1D miss%", "L2 miss%", "dirty evict%"});
    for (const WorkloadProfile &w : standardWorkloads()) {
        wl.addRow({w.name, w.scientific ? "scientific" : "commercial",
                   Table::pct(w.loadFrac), Table::pct(w.storeFrac),
                   Table::pct(w.l1iMissRate), Table::pct(w.l1dMissRate),
                   Table::pct(w.l2MissRate),
                   Table::pct(w.dirtyEvictFrac)});
    }
    wl.print();
    return 0;
}
